"""Vectorized query execution engine (batch counterpart of the
reference interpreter).

Evaluates a resolved program over *columns* instead of rows:

* ``WHERE`` predicates compile to boolean masks over the input columns;
* ``SELECT`` projections evaluate each output expression as one array
  expression over the masked columns;
* ``GROUPBY`` stages factorize the key columns once (stable lexsort,
  first-occurrence group order — the same order the interpreter's dict
  produces), then evaluate every fold with the cheapest strategy that
  is *exactly* equivalent to the interpreter's per-row loop:

  - **reduction** — folds whose update matrix is the identity (the
    paper's §3.2 linear-in-state class with ``S = S + B``, detected by
    :func:`repro.core.linearity.analyze_fold`): ``B`` is evaluated as
    one array over the matching packets and accumulated per group with
    ``np.add.at``, which applies updates sequentially in packet order —
    the floating-point result is bit-identical to the row loop.
    History variables (bounded packet history, footnote 4) are handled
    by evaluating their update expression per packet and shifting it by
    one position within each group segment.
  - **rounds** — any other fold (non-identity linear such as EWMA, and
    the non-linear class such as ``nonmt``): packets are laid out
    round-major (the *k*-th packet of every group side by side) and the
    if-converted update expressions are applied elementwise across all
    live groups, one round per in-group packet rank.  Each state
    transition performs the same scalar operations in the same order as
    the interpreter, so results are again exact; the cost is one numpy
    dispatch per round (bounded by the largest group).
  - **replay** — a per-fold fallback to the reference interpreter's
    scalar update loop, used when an expression contains something the
    array evaluator does not support.  Only the affected fold is
    replayed; the other folds of the stage stay vectorized.

``JOIN`` stages and anything else outside the vector path are delegated
to an embedded :class:`~repro.core.interpreter.Interpreter`, so the
executor is *always* exact — vectorization changes the speed, never the
result.

Known semantic deltas versus the scalar evaluator (documented, not
observable in well-formed queries): division by zero yields ``inf``/
``nan`` instead of raising, both branches of a conditional are
evaluated (with the untaken side discarded), and ``and``/``or`` do not
short-circuit.  Integer arithmetic is 64-bit.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping

import numpy as np

from .ast_nodes import (
    BinOp,
    Call,
    ColumnRef,
    Cond,
    Expr,
    FieldRef,
    Number,
    ParamRef,
    StateRef,
    UnaryOp,
    walk,
)
from .errors import InterpreterError
from .eval_expr import EvalContext, Numeric, evaluate
from .interpreter import Interpreter, ResultTable
from .linearity import LinearityResult, analyze_fold
from .semantics import FoldInstance, ResolvedProgram, ResolvedQuery


class VectorizationError(Exception):
    """Internal: this expression/stage cannot run on the array path.

    Raising it triggers a fallback (per-fold replay or whole-stage
    interpreter evaluation); it never escapes the executor.
    """


def guard_int64_accumulation(out: np.ndarray, b: np.ndarray) -> None:
    """Reject an ``np.add.at`` accumulation that could exceed int64.

    The reference interpreter runs on unbounded Python ints; the array
    path runs on int64, which would *silently wrap*.  A conservative
    bound — current accumulator magnitude plus ``len(b) * max|b|`` —
    costs two array reductions and proves the common case safe.  When
    the bound reaches 2^63 this warns and raises
    :class:`VectorizationError`, which the callers turn into the exact
    scalar replay fallback (bit-identical to the interpreter).  Bounds
    use Python ints throughout: ``abs(np.int64.min)`` would itself
    wrap.
    """
    if out.dtype.kind not in "iu" or b.dtype.kind not in "iu" or not b.size:
        return
    max_abs_b = max(abs(int(b.min())), abs(int(b.max())))
    base = 0 if not out.size else max(abs(int(out.min())),
                                      abs(int(out.max())))
    if base + int(b.size) * max_abs_b < 2 ** 63:
        return
    warnings.warn(
        "fold accumulation may exceed int64; falling back to exact "
        "scalar replay for this fold (slower, bit-identical to the row "
        "engine)", RuntimeWarning, stacklevel=3)
    raise VectorizationError("potential int64 accumulator overflow")


# ---------------------------------------------------------------------------
# Array expression evaluation
# ---------------------------------------------------------------------------


class ArrayContext:
    """Column environment for array-expression evaluation.

    ``columns`` maps field/column names to arrays of length ``n`` (the
    current batch); ``state`` maps state-variable names to arrays (one
    element per group or per row, depending on the caller).
    """

    __slots__ = ("columns", "state", "params", "n")

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        params: Mapping[str, Numeric],
        n: int,
        state: Mapping[str, np.ndarray] | None = None,
    ):
        self.columns = columns
        self.state = state
        self.params = params
        self.n = n


def _truthy(value) -> np.ndarray:
    """Elementwise truth value (nonzero) of an array or scalar."""
    return np.asarray(value) != 0


def _as_pred_int(value) -> np.ndarray:
    """Materialise a boolean result as 0/1 int64, mirroring the scalar
    evaluator's hardware convention."""
    return _truthy(value).astype(np.int64)


def eval_array(expr: Expr, ctx: ArrayContext):
    """Evaluate a resolved expression over columns; returns an array of
    length ``ctx.n`` or a scalar (for inputs with no row dependence)."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, FieldRef):
        try:
            return ctx.columns[expr.name]
        except KeyError:
            raise VectorizationError(f"no column {expr.name!r}") from None
    if isinstance(expr, ColumnRef):
        if expr.table is not None:
            raise VectorizationError("qualified column in vector context")
        try:
            return ctx.columns[expr.name]
        except KeyError:
            raise VectorizationError(f"no column {expr.name!r}") from None
    if isinstance(expr, StateRef):
        if ctx.state is None or expr.name not in ctx.state:
            raise VectorizationError(f"no state array for {expr.name!r}")
        return ctx.state[expr.name]
    if isinstance(expr, ParamRef):
        try:
            return ctx.params[expr.name]
        except KeyError:
            raise InterpreterError(
                f"query parameter {expr.name!r} has no binding; pass it via params="
            ) from None
    if isinstance(expr, Cond):
        pred = _truthy(eval_array(expr.pred, ctx))
        with np.errstate(all="ignore"):
            then = eval_array(expr.then, ctx)
            orelse = eval_array(expr.orelse, ctx)
            return np.where(pred, then, orelse)
    if isinstance(expr, UnaryOp):
        value = eval_array(expr.operand, ctx)
        if expr.op == "not":
            return (~_truthy(value)).astype(np.int64)
        return np.negative(value)
    if isinstance(expr, Call):
        args = [eval_array(a, ctx) for a in expr.args]
        if expr.func == "abs":
            return np.abs(args[0])
        if expr.func in ("max", "min"):
            ufunc = np.maximum if expr.func == "max" else np.minimum
            result = args[0]
            for other in args[1:]:
                result = ufunc(result, other)
            return result
        raise VectorizationError(f"unknown function {expr.func!r}")
    if isinstance(expr, BinOp):
        op = expr.op
        left = eval_array(expr.left, ctx)
        right = eval_array(expr.right, ctx)
        if op == "+":
            return np.add(left, right)
        if op == "-":
            return np.subtract(left, right)
        if op == "*":
            return np.multiply(left, right)
        if op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.true_divide(left, right)
        if op == "==":
            return _as_pred_int(np.equal(left, right))
        if op == "!=":
            return _as_pred_int(np.not_equal(left, right))
        if op == "<":
            return _as_pred_int(np.less(left, right))
        if op == "<=":
            return _as_pred_int(np.less_equal(left, right))
        if op == ">":
            return _as_pred_int(np.greater(left, right))
        if op == ">=":
            return _as_pred_int(np.greater_equal(left, right))
        if op == "and":
            return (_truthy(left) & _truthy(right)).astype(np.int64)
        if op == "or":
            return (_truthy(left) | _truthy(right)).astype(np.int64)
        raise VectorizationError(f"unknown operator {op!r}")
    raise VectorizationError(f"cannot vectorize {expr!r}")


def _init_dtype(init: Numeric) -> np.dtype:
    """Accumulator dtype contributed by an initial state value."""
    return np.dtype(np.float64 if isinstance(init, float) else np.int64)


def as_column(value, n: int) -> np.ndarray:
    """Broadcast a scalar result to a length-``n`` array; pass arrays
    through."""
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    return np.full(n, value)


def eval_mask(expr: Expr | None, ctx: ArrayContext) -> np.ndarray | None:
    """A WHERE predicate as a boolean mask; ``None`` means pass-all."""
    if expr is None:
        return None
    return _truthy(as_column(eval_array(expr, ctx), ctx.n))


def _expr_columns(exprs: Iterable[Expr]) -> set[str]:
    """Field/column names referenced by ``exprs``."""
    names: set[str] = set()
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, (FieldRef, ColumnRef)):
                names.add(node.name)
    return names


# ---------------------------------------------------------------------------
# Key factorization and group layout
# ---------------------------------------------------------------------------


def factorize(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray], int]:
    """Dense group ids for multi-column keys, first-occurrence ordered.

    Returns ``(gid, unique_key_columns, n_groups)``: ``gid[i]`` is the
    group of row ``i``; group ``0`` is the key that appears first in
    the input, matching the insertion order of the interpreter's group
    dict.  Exact — no hashing, no collisions.
    """
    n = len(key_arrays[0])
    if n == 0:
        return np.zeros(0, dtype=np.int64), [a[:0] for a in key_arrays], 0
    order = np.lexsort(key_arrays[::-1])  # stable: ties keep input order
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for arr in key_arrays:
        arr_sorted = arr[order]
        change[1:] |= arr_sorted[1:] != arr_sorted[:-1]
    sorted_gid = np.cumsum(change) - 1
    n_groups = int(sorted_gid[-1]) + 1
    first_idx = order[change]          # first input occurrence per sorted group
    rank = np.empty(n_groups, dtype=np.int64)
    rank[np.argsort(first_idx, kind="stable")] = np.arange(n_groups)
    gid = np.empty(n, dtype=np.int64)
    gid[order] = rank[sorted_gid]
    occurrence_order = np.sort(first_idx)
    keys = [arr[occurrence_order] for arr in key_arrays]
    return gid, keys, n_groups


class _GroupLayout:
    """Group-major and round-major orderings of a batch of rows.

    The "groups" need not be key groups: the vectorized split store
    (:mod:`repro.switch.kvstore.vector_store`) reuses this layout — and
    the fold strategies below — with cache *residency epochs* as the
    groups, which is what makes per-epoch fold evaluation the same
    machinery as whole-stream ``GROUPBY`` evaluation.
    """

    __slots__ = ("gid", "n_groups", "order", "counts", "offsets")

    def __init__(self, gid: np.ndarray, n_groups: int):
        self.gid = gid
        self.n_groups = n_groups
        self.order = np.argsort(gid, kind="stable")   # group-major positions
        self.counts = np.bincount(gid, minlength=n_groups).astype(np.int64)
        self.offsets = np.zeros(n_groups + 1, dtype=np.int64)
        np.cumsum(self.counts, out=self.offsets[1:])

    @classmethod
    def from_sorted_order(cls, gid: np.ndarray, n_groups: int,
                          order: np.ndarray) -> "_GroupLayout":
        """Build a layout from an already-computed group-major
        permutation (``gid[order]`` must be nondecreasing, ties in
        input order), skipping the argsort."""
        layout = cls.__new__(cls)
        layout.gid = gid
        layout.n_groups = n_groups
        layout.order = order
        layout.counts = np.bincount(gid, minlength=n_groups).astype(np.int64)
        layout.offsets = np.zeros(n_groups + 1, dtype=np.int64)
        np.cumsum(layout.counts, out=layout.offsets[1:])
        return layout

    def segment_starts_mask(self) -> np.ndarray:
        mask = np.zeros(len(self.gid), dtype=bool)
        mask[self.offsets[:-1][self.counts > 0]] = True
        return mask

    def ranks_group_major(self) -> np.ndarray:
        """In-group packet rank for each group-major position."""
        return np.arange(len(self.gid)) - np.repeat(self.offsets[:-1], self.counts)


# ---------------------------------------------------------------------------
# Fold evaluation strategies
# ---------------------------------------------------------------------------


def _promote_assign(states: dict[str, np.ndarray], var: str,
                    indices: np.ndarray, values: np.ndarray) -> None:
    """``states[var][indices] = values`` with dtype promotion (a fold's
    state becomes float the first time an update produces one)."""
    current = states[var]
    promoted = np.result_type(current.dtype, values.dtype)
    if promoted != current.dtype:
        states[var] = current = current.astype(promoted)
    current[indices] = values


class _FoldVectorizer:
    """Evaluates one fold instance over one factorized batch."""

    def __init__(self, fold: FoldInstance, linearity: LinearityResult,
                 params: Mapping[str, Numeric]):
        self.fold = fold
        self.linearity = linearity
        self.params = params
        self.update_exprs = linearity.update_exprs
        self.needed = _expr_columns(self.update_exprs.values())

    @property
    def strategy(self) -> str:
        lin = self.linearity
        if lin.linear and lin.matrix_kind == "identity":
            return "reduction"
        return "rounds"

    # -- shared: history pre-values ------------------------------------------

    def _history_values(self, ctx: ArrayContext, layout: _GroupLayout,
                        init_override: Mapping[str, np.ndarray] | None = None,
                        ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Per-row *pre*-values and per-group final values of every
        history variable (bounded-packet-history state, footnote 4).

        ``init_override`` maps state variables to per-group initial
        values (length ``n_groups``) — the windowed split store's
        epoch-continuation hook: a group whose epoch started in an
        earlier window resumes from its carried value instead of the
        fold's scalar init.
        """
        history = self.linearity.history
        pre: dict[str, np.ndarray] = {}
        final: dict[str, np.ndarray] = {}
        starts = layout.segment_starts_mask()
        nonempty = layout.counts > 0
        order = layout.order
        for var in sorted(history, key=history.get):
            hctx = ArrayContext(ctx.columns, self.params, ctx.n, state=pre)
            post = as_column(eval_array(self.update_exprs[var], hctx), ctx.n)
            post_gm = post[order]
            init = self.fold.inits.get(var, 0)
            if init_override is not None and var in init_override:
                init_arr = init_override[var]
                dtype = np.result_type(post_gm.dtype, init_arr.dtype)
                pre_gm = np.empty(ctx.n, dtype=dtype)
                pre_gm[1:] = post_gm[:-1]
                pre_gm[starts] = init_arr[nonempty]
            else:
                dtype = np.result_type(post_gm.dtype, _init_dtype(init))
                pre_gm = np.empty(ctx.n, dtype=dtype)
                pre_gm[1:] = post_gm[:-1]
                pre_gm[starts] = init
            pre_rm = np.empty_like(pre_gm)
            pre_rm[order] = pre_gm
            pre[var] = pre_rm
            final[var] = post_gm[layout.offsets[1:] - 1]
        return pre, final

    # -- strategy: segmented reduction (identity matrix) ---------------------

    def reduce(self, ctx: ArrayContext, layout: _GroupLayout,
               init_override: Mapping[str, np.ndarray] | None = None,
               ) -> dict[str, np.ndarray]:
        """Identity-matrix linear folds: ``S = S + B`` accumulated with
        order-preserving ``np.add.at`` (one pass, no Python loop).

        ``init_override`` seeds selected variables with per-group
        starting values (epoch continuation, see
        :meth:`_history_values`); accumulation on top of a seeded value
        performs the same additions in the same order as the scalar
        loop resuming from that value.
        """
        pre_history, final_history = self._history_values(
            ctx, layout, init_override=init_override)
        states: dict[str, np.ndarray] = dict(final_history)
        for var in self.linearity.order:
            init = self.fold.inits.get(var, 0)
            b_expr = self.linearity.offset[var]
            bctx = ArrayContext(ctx.columns, self.params, ctx.n, state=pre_history)
            b = as_column(eval_array(b_expr, bctx), ctx.n)
            if init_override is not None and var in init_override:
                init_arr = init_override[var]
                dtype = np.result_type(np.asarray(b).dtype, init_arr.dtype)
                out = init_arr.astype(dtype, copy=True)
            else:
                dtype = np.result_type(np.asarray(b).dtype, _init_dtype(init))
                out = np.full(layout.n_groups, init, dtype=dtype)
            b = np.asarray(b).astype(dtype, copy=False)
            guard_int64_accumulation(out, b)
            np.add.at(out, layout.gid, b)
            states[var] = out
        return states

    # -- strategy: round-major elementwise iteration -------------------------

    def round_plan(self, layout: _GroupLayout) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Round-major row ordering: positions of every group's ``r``-th
        packet are contiguous, groups side by side."""
        ranks = layout.ranks_group_major()
        round_order = np.argsort(ranks, kind="stable")
        rows_rm = layout.order[round_order]
        round_counts = np.bincount(ranks)
        round_offsets = np.zeros(len(round_counts) + 1, dtype=np.int64)
        np.cumsum(round_counts, out=round_offsets[1:])
        return rows_rm, layout.gid[rows_rm], round_offsets

    def run_rounds(self, ctx: ArrayContext, layout: _GroupLayout,
                   init_override: Mapping[str, np.ndarray] | None = None,
                   ) -> dict[str, np.ndarray]:
        """Exact general path: apply the if-converted update expressions
        elementwise across all groups, one round per in-group rank.

        ``init_override`` seeds selected variables with per-group
        starting values (epoch continuation) — each seeded group then
        undergoes exactly the state transitions the scalar loop would
        perform resuming from that state.
        """
        rows_rm, gid_rm, round_offsets = self.round_plan(layout)
        needed = {name: ctx.columns[name] for name in self.needed
                  if name in ctx.columns}
        missing = self.needed - set(needed)
        if missing:
            raise VectorizationError(f"no column {missing.pop()!r}")
        states: dict[str, np.ndarray] = {}
        for var in self.fold.state_vars:
            init = self.fold.inits.get(var, 0)
            dtype = np.float64 if isinstance(init, float) else np.int64
            if init_override is not None and var in init_override:
                init_arr = init_override[var]
                states[var] = init_arr.astype(
                    np.result_type(dtype, init_arr.dtype), copy=True)
            else:
                states[var] = np.full(layout.n_groups, init, dtype=dtype)
        for r in range(len(round_offsets) - 1):
            lo, hi = round_offsets[r], round_offsets[r + 1]
            idx = rows_rm[lo:hi]
            groups = gid_rm[lo:hi]
            columns = {name: arr[idx] for name, arr in needed.items()}
            state_view = {var: arr[groups] for var, arr in states.items()}
            rctx = ArrayContext(columns, self.params, hi - lo, state=state_view)
            new_values = {
                var: as_column(eval_array(expr, rctx), hi - lo)
                for var, expr in self.update_exprs.items()
            }
            for var, values in new_values.items():
                _promote_assign(states, var, groups, values)
        return states

    # -- strategy: per-fold scalar replay ------------------------------------

    def replay(self, ctx: ArrayContext, layout: _GroupLayout) -> dict[str, np.ndarray]:
        """Reference-interpreter fallback for this fold only: replay the
        batch through the scalar update loop (exact by construction)."""
        needed = sorted(self.needed & set(ctx.columns))
        columns = {name: ctx.columns[name].tolist() for name in needed}
        gid = layout.gid.tolist()
        group_states: list[dict[str, Numeric] | None] = [None] * layout.n_groups
        for i in range(ctx.n):
            state = group_states[gid[i]]
            if state is None:
                state = self.fold.initial_state()
                group_states[gid[i]] = state
            row = {name: columns[name][i] for name in needed}
            fctx = EvalContext(row=row, state=state, params=self.params)
            state.update({
                var: evaluate(expr, fctx) for var, expr in self.update_exprs.items()
            })
        return {
            var: np.asarray([state[var] for state in group_states])
            for var in self.fold.state_vars
        }

    def evaluate(self, ctx: ArrayContext, layout: _GroupLayout) -> dict[str, np.ndarray]:
        """Final per-group state arrays, via the cheapest exact strategy."""
        try:
            if self.strategy == "reduction":
                return self.reduce(ctx, layout)
            return self.run_rounds(ctx, layout)
        except VectorizationError:
            return self.replay(ctx, layout)


#: Public names for the segmented-fold machinery shared with the
#: vectorized split store (epochs-as-groups, see _GroupLayout).
GroupLayout = _GroupLayout
FoldVectorizer = _FoldVectorizer


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class VectorExecutor:
    """Batch evaluator for a resolved program.

    Drop-in counterpart of :class:`~repro.core.interpreter.Interpreter`:
    same constructor, same ``run`` / ``run_result`` / ``evaluate_stage``
    surface, identical results.  Prefers columnar input
    (:class:`~repro.network.records.ObservationTable` in columnar
    authority); row input is columnized once on entry.

    Args:
        program: Output of :func:`repro.core.semantics.resolve_program`.
        params: Bindings for free query parameters.
    """

    def __init__(self, program: ResolvedProgram,
                 params: Mapping[str, Numeric] | None = None):
        self.program = program
        self.params = dict(params or {})
        missing = set(program.params) - set(self.params)
        if missing:
            raise InterpreterError(f"unbound query parameters: {sorted(missing)}")
        self._interp = Interpreter(program, params=self.params)
        self._folds: dict[tuple[str, str], _FoldVectorizer] = {}
        for query in program.queries:
            for fold in query.folds:
                self._folds[(query.name, fold.column)] = _FoldVectorizer(
                    fold, analyze_fold(fold), self.params
                )

    # -- public API ---------------------------------------------------------

    def run(self, records) -> dict[str, ResultTable]:
        """Evaluate every query; returns tables keyed by query name."""
        base_columns, base_n, rows = self._base_input(records)
        tables: dict[str, ResultTable] = {}
        column_cache: dict[str, tuple[dict[str, np.ndarray], int]] = {}
        for query in self.program.queries:
            tables[query.name] = self._eval_query(
                query, base_columns, base_n, rows, tables, column_cache
            )
        return tables

    def run_result(self, records) -> ResultTable:
        """Evaluate and return only the program's result table."""
        return self.run(records)[self.program.result]

    def evaluate_stage(self, query_name: str, records,
                       tables: dict[str, ResultTable]) -> ResultTable:
        """Evaluate one named query over already-materialised upstream
        ``tables`` (and ``records`` for base-table queries) — the
        entry point the telemetry runtime uses for software stages."""
        base_columns, base_n, rows = self._base_input(records)
        return self._eval_query(
            self.program.by_name(query_name), base_columns, base_n, rows, tables, {}
        )

    # -- input handling ---------------------------------------------------------

    def _base_input(self, records):
        """Columns + length + lazily-usable row handle for the stream."""
        from repro.network.records import ObservationTable

        if isinstance(records, ObservationTable):
            columns = records.columns()
            return columns, len(records), records
        rows = records if isinstance(records, list) else list(records)
        columns = ObservationTable(rows).columns() if rows else None
        if columns is None:
            columns = ObservationTable([]).columns()
        return columns, len(rows), rows

    @staticmethod
    def _columns_from_table(table: ResultTable) -> tuple[dict[str, np.ndarray], int]:
        """Upstream-table columns as arrays — columnar tables (the
        vector engines' output) hand their arrays over directly, with
        no row materialisation."""
        columns = {
            name: np.asarray(values)
            for name, values in table.columns().items()
        }
        return columns, len(table)

    # -- query dispatch ----------------------------------------------------------

    def _eval_query(self, query: ResolvedQuery, base_columns, base_n, rows,
                    tables: dict[str, ResultTable],
                    column_cache: dict) -> ResultTable:
        if query.kind == "join":
            # Joins run over (small) post-aggregation tables; the
            # relational part stays on the reference interpreter.
            return self._interp.evaluate_stage(query.name, [], tables)
        if query.source is None:
            columns, n = base_columns, base_n
        elif query.source in column_cache:
            columns, n = column_cache[query.source]
        else:
            columns, n = self._columns_from_table(tables[query.source])
            column_cache[query.source] = (columns, n)
        ctx = ArrayContext(columns, self.params, n)
        try:
            if query.kind == "select":
                table, out_columns = self._eval_select(query, ctx)
            elif query.kind == "groupby":
                table, out_columns = self._eval_groupby(query, ctx)
            else:
                raise InterpreterError(f"unknown query kind {query.kind!r}")
        except VectorizationError:
            # Whole-stage fallback: evaluate this stage on the reference
            # interpreter over row views.
            stream = list(rows) if not isinstance(rows, list) else rows
            return self._interp.evaluate_stage(query.name, stream, tables)
        column_cache[query.name] = (out_columns, len(table))
        return table

    # -- SELECT ------------------------------------------------------------------

    def _eval_select(self, query: ResolvedQuery, ctx: ArrayContext):
        mask = eval_mask(query.where, ctx)
        if mask is None:
            masked = ctx
        else:
            sel = np.flatnonzero(mask)
            needed = _expr_columns(
                col.expr for col in query.output.columns if col.expr is not None
            )
            masked = ArrayContext(
                {name: arr[sel] for name, arr in ctx.columns.items()
                 if name in needed},
                self.params, len(sel),
            )
        out_columns: dict[str, np.ndarray] = {}
        for col in query.output.columns:
            if col.expr is None:
                continue
            out_columns[col.name] = as_column(eval_array(col.expr, masked), masked.n)
        table = ResultTable.from_columns(query.output, out_columns)
        return table, out_columns

    # -- GROUPBY -----------------------------------------------------------------

    def _eval_groupby(self, query: ResolvedQuery, ctx: ArrayContext):
        mask = eval_mask(query.where, ctx)
        if mask is None:
            sel_ctx = ctx
        else:
            sel = np.flatnonzero(mask)
            needed = set(query.groupby_keys)
            for fold in query.folds:
                needed |= self._folds[(query.name, fold.column)].needed
            sel_ctx = ArrayContext(
                {name: arr[sel] for name, arr in ctx.columns.items()
                 if name in needed},
                self.params, len(sel),
            )
        try:
            key_arrays = [sel_ctx.columns[k] for k in query.groupby_keys]
        except KeyError as exc:
            raise VectorizationError(f"no key column {exc.args[0]!r}") from None
        gid, unique_keys, n_groups = factorize(key_arrays)
        layout = _GroupLayout(gid, n_groups)

        fold_states: dict[str, dict[str, np.ndarray]] = {}
        for fold in query.folds:
            vectorizer = self._folds[(query.name, fold.column)]
            fold_states[fold.column] = vectorizer.evaluate(sel_ctx, layout)

        out_columns: dict[str, np.ndarray] = dict(
            zip(query.groupby_keys, unique_keys)
        )
        for col in query.output.columns:
            if col.kind == "agg":
                out_columns[col.name] = fold_states[col.fold][col.state_var]
            elif col.kind == "derived":
                dctx = ArrayContext({}, self.params, n_groups,
                                    state=fold_states[col.fold])
                with np.errstate(divide="ignore", invalid="ignore"):
                    out_columns[col.name] = as_column(
                        eval_array(col.read_expr, dctx), n_groups
                    )
        table = ResultTable.from_columns(query.output, out_columns)
        return table, out_columns


def run_query_vectorized(source: str, records,
                         params: Mapping[str, Numeric] | None = None) -> ResultTable:
    """One-shot convenience: parse, resolve, and batch-evaluate."""
    from .parser import parse_program
    from .semantics import resolve_program

    program = resolve_program(parse_program(source))
    return VectorExecutor(program, params=params).run_result(records)
