"""Streaming TelemetrySession tests.

The differential core of the PR's acceptance criteria: windowed
sessions must be **bit-identical** to the one-shot ``run()`` path — all
tables, ``CacheStats`` counters, accuracy, backing writes, refresh
counts — across the full query catalog, both engines, and multiple
window sizes (including windows far smaller and far larger than the
ingest chunks, so schedule windows and ingest boundaries interleave
every way).  Plus: refresh boundaries falling mid-chunk, mid-stream
snapshots, session lifecycle errors, exact sessions, the windowed
store's carried-state internals, network-wide sessions, and the lazy
columnar ``ResultTable``.
"""

import numpy as np
import pytest

from repro.core.errors import SessionClosedError, SessionError
from repro.core.interpreter import ResultTable
from repro.network.records import ObservationTable
from repro.queries.catalog import FIG2_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.kvstore.windowed_store import WindowedVectorStore
from repro.telemetry import QueryEngine, compare_tables

from tests.conftest import synthetic_trace

GEOM = CacheGeometry.set_associative(128, ways=4)


def observables(report):
    """Everything a run produced, in comparable form."""
    return (
        {q: t.rows for q, t in report.tables.items()},
        {q: (s.accesses, s.hits, s.misses, s.insertions, s.evictions)
         for q, s in report.cache_stats.items()},
        report.backing_writes,
        report.accuracy,
    )


def chunked(table: ObservationTable, size: int):
    columns = table.columns()
    for lo in range(0, len(table), size):
        yield ObservationTable.from_arrays(
            {name: arr[lo:lo + size] for name, arr in columns.items()})


def session_report(engine, table, window, chunk=777, include_invalid=True):
    session = engine.open(window=window)
    for batch in chunked(table, chunk):
        session.ingest(batch)
    return session.close(include_invalid=include_invalid)


class TestWindowedBitIdentity:
    """Windowed sessions == one-shot run(), full catalog × engines ×
    window sizes (the PR's differential acceptance criterion)."""

    @pytest.fixture(scope="class")
    def small_trace(self):
        return synthetic_trace(2500, seed=20)

    @pytest.mark.parametrize("entry", FIG2_QUERIES, ids=lambda e: e.name)
    @pytest.mark.parametrize("engine", ["row", "vector"])
    def test_catalog_windows_match_one_shot(self, entry, engine,
                                            small_trace):
        qe = QueryEngine(entry.source, params=entry.default_params,
                         geometry=GEOM, exact_history=True, engine=engine)
        base = observables(qe.run(small_trace, include_invalid=True))
        for window in (193, 1024, 10 ** 6):
            report = session_report(qe, small_trace, window)
            assert observables(report) == base, \
                f"{entry.name}/{engine} diverged at window={window}"

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("ways", [2, 8])
    def test_eviction_policies_match_one_shot(self, policy, ways,
                                              small_trace):
        """The carried FIFO/random replay schedulers (packed per-set
        ring buffers + counter-based RNG, and the per-access reference
        scheduler on few-set geometries) and the LRU phantom-prefix
        path all stay bit-identical across window cuts."""
        geometry = CacheGeometry.set_associative(32 * ways // 2, ways=ways)
        qe = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
                         geometry=geometry, policy=policy)
        base = observables(qe.run(small_trace, include_invalid=True))
        for window in (167, 1024):
            report = session_report(qe, small_trace, window, chunk=409)
            assert observables(report) == base, (policy, window)

    def test_single_ingest_equals_chunked_ingest(self, small_trace):
        qe = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip",
                         geometry=GEOM)
        one = qe.open(window=300).ingest(small_trace).close()
        many = session_report(qe, small_trace, 300, chunk=211,
                              include_invalid=False)
        assert observables(one) == observables(many)


class TestRefreshMidChunk:
    """Refresh-period boundaries that fall mid-chunk (and mid-window):
    epochs must cut at exactly the same global positions as the
    per-packet store's counter."""

    @pytest.mark.parametrize("refresh,window,chunk", [
        (97, 256, 111),      # refresh < chunk < window
        (250, 97, 111),      # window < chunk, refresh lands mid-chunk
        (1000, 256, 256),    # refresh spans several windows
        (100, 100, 100),     # aligned everywhere
        (333, 10 ** 6, 97),  # window larger than the trace
    ])
    def test_refresh_boundaries(self, refresh, window, chunk):
        trace = synthetic_trace(1500, seed=5)
        qe = QueryEngine("SELECT COUNT, MAX(qsize) GROUPBY srcip",
                         geometry=CacheGeometry.set_associative(32, ways=4),
                         refresh_interval=refresh)
        base = observables(qe.run(trace, include_invalid=True))
        report = session_report(qe, trace, window, chunk=chunk)
        assert observables(report) == base

    def test_refresh_counts_carried_across_windows(self):
        trace = synthetic_trace(1000, seed=6)
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM,
                         refresh_interval=77)
        session = qe.open(window=123)
        for batch in chunked(trace, 89):
            session.ingest(batch)
        session.close()
        pipeline = session._pipeline
        store = pipeline.store_for(
            qe.compiled.groupby_stages[0].query_name)
        assert store.refreshes == len(trace) // 77


class TestSessionLifecycle:
    def test_ingest_after_close_raises(self, tiny_trace):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        session = qe.open(window=64)
        session.ingest(tiny_trace)
        session.close()
        with pytest.raises(SessionClosedError):
            session.ingest(tiny_trace)

    def test_double_close_raises(self, tiny_trace):
        session = QueryEngine("SELECT COUNT GROUPBY srcip",
                              geometry=GEOM).open(window=64)
        session.ingest(tiny_trace)
        session.close()
        with pytest.raises(SessionClosedError):
            session.close()

    def test_session_errors_are_importable_from_errors(self):
        from repro.core import errors
        assert issubclass(errors.SessionClosedError, errors.SessionError)

    def test_results_after_close_raises(self, tiny_trace):
        """The final report is close()'s return value; every post-close
        read raises — results() included, matching ingest()/close()."""
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        session = qe.open(window=64)
        session.ingest(tiny_trace)
        report = session.close()
        assert report.result.rows
        with pytest.raises(SessionClosedError):
            session.results()

    def test_cache_stats_after_close_raises(self, tiny_trace):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        session = qe.open(window=64)
        session.ingest(tiny_trace)
        assert session.cache_stats()           # open: fine
        report = session.close()
        assert report.cache_stats              # final counters live here
        with pytest.raises(SessionClosedError):
            session.cache_stats()

    def test_exact_session_post_close_reads_raise(self, tiny_trace):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        session = qe.open(exact=True)
        session.ingest(tiny_trace)
        session.close()
        with pytest.raises(SessionClosedError):
            session.results()
        with pytest.raises(SessionClosedError):
            session.cache_stats()

    def test_deferred_one_shot_rejects_mid_stream_results(self, tiny_trace):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM,
                         engine="vector")
        session = qe.open()            # no window: deferred schedule
        session.ingest(tiny_trace)
        with pytest.raises(SessionError):
            session.results()

    def test_snapshot_with_zero_matching_records(self, tiny_trace):
        """A WHERE that filters everything: mid-stream snapshots and
        close both return empty tables (no carry arrays ever exist)."""
        qe = QueryEngine(
            "SELECT COUNT, SUM(pkt_len) GROUPBY srcip "
            "WHERE pkt_len > 999999999",
            geometry=GEOM, engine="vector")
        session = qe.open(window=64)
        session.ingest(tiny_trace)
        assert session.results().result.rows == []
        assert session.close().result.rows == []

    def test_context_manager_closes(self, tiny_trace):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        with qe.open(window=64) as session:
            session.ingest(tiny_trace)
        assert session.closed

    def test_context_manager_propagates_body_errors(self, tiny_trace):
        """__exit__ must never swallow an in-flight error — and with
        one in flight it leaves the session open rather than risking a
        close() failure masking the original."""
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        with pytest.raises(RuntimeError, match="boom"):
            with qe.open(window=64) as session:
                session.ingest(tiny_trace)
                raise RuntimeError("boom")
        assert not session.closed
        assert session.close().result.rows     # still usable

    def test_network_context_manager_propagates_body_errors(self):
        from repro.network.simulator import NetworkSimulator
        from repro.network.topology import linear_chain

        sim = NetworkSimulator(linear_chain(2))
        from repro.telemetry.deploy import NetworkDeployment
        deploy = NetworkDeployment("SELECT COUNT GROUPBY srcip", sim,
                                   geometry=GEOM)
        with pytest.raises(RuntimeError, match="boom"):
            with deploy.open(window=64) as session:
                raise RuntimeError("boom")
        assert not session._closed
        session.close()

    def test_empty_session_close(self):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM)
        report = qe.open(window=64).close()
        assert report.result.rows == []

    def test_store_window_must_be_positive(self):
        with pytest.raises(Exception):
            WindowedVectorStore(
                QueryEngine("SELECT COUNT GROUPBY srcip")
                .compiled.groupby_stages[0], GEOM, window=0)

    @pytest.mark.parametrize("engine", ["auto", "vector", "row"])
    @pytest.mark.parametrize("window", [0, -1, -64])
    def test_open_rejects_nonpositive_window(self, engine, window):
        """Regression: open(window<=0) must raise up front on *every*
        engine — the row engine used to silently ignore the knob and
        the vector engine deferred the failure into the store."""
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM,
                         engine=engine)
        with pytest.raises(ValueError, match="window must be a positive"):
            qe.open(window=window)

    def test_network_open_rejects_nonpositive_window(self):
        from repro.network.simulator import NetworkSimulator
        from repro.network.topology import linear_chain
        from repro.telemetry.deploy import NetworkDeployment

        deploy = NetworkDeployment(
            "SELECT COUNT GROUPBY srcip",
            NetworkSimulator(linear_chain(2)), geometry=GEOM)
        with pytest.raises(ValueError, match="window must be a positive"):
            deploy.open(window=0)


class TestMidStreamSnapshots:
    """results() mid-stream == a fresh one-shot run over the prefix,
    and never perturbs the continuing stream."""

    @pytest.mark.parametrize("engine,window", [
        ("row", None), ("auto", 177), ("vector", 512),
    ])
    def test_snapshot_equals_prefix_run(self, engine, window):
        trace = synthetic_trace(1200, seed=9)
        qe = QueryEngine(
            "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
            "SELECT srcip, ewma GROUPBY srcip",
            params={"alpha": 0.2}, geometry=GEOM, engine=engine)
        columns = trace.columns()
        session = qe.open(window=window)
        seen = 0
        for batch in chunked(trace, 289):
            session.ingest(batch)
            seen += len(batch)
            prefix = ObservationTable.from_arrays(
                {name: arr[:seen] for name, arr in columns.items()})
            snap = session.results(include_invalid=True)
            base = qe.run(prefix, include_invalid=True)
            assert observables(snap) == observables(base), f"at {seen}"
        final = session.close(include_invalid=True)
        assert observables(final) == observables(
            qe.run(trace, include_invalid=True))


class TestExactSessions:
    def test_exact_session_matches_run_exact(self, trace):
        qe = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip",
                         geometry=GEOM)
        session = qe.open(exact=True)
        for batch in chunked(trace, 1111):
            session.ingest(batch)
        mid_tables = session.results().tables   # pre-close snapshot
        chunked_tables = session.close().tables
        whole = qe.run_exact(trace)
        assert {q: t.rows for q, t in chunked_tables.items()} == \
            {q: t.rows for q, t in whole.items()}
        assert {q: t.rows for q, t in mid_tables.items()} == \
            {q: t.rows for q, t in whole.items()}

    def test_run_exact_row_input_uses_interpreter_results(self, tiny_trace):
        qe = QueryEngine("SELECT COUNT GROUPBY srcip", geometry=GEOM,
                         engine="auto")
        name = qe.compiled.result
        assert qe.run_exact(tiny_trace.records)[name].rows == \
            qe.run_exact(tiny_trace)[name].rows


class TestCarriedStateInternals:
    """Windowed-store internals the differential tests rely on."""

    def test_memory_state_bounded_by_capacity(self):
        """Open-epoch carry must track cache residency, not the key
        universe: after many windows of all-unique keys, the carried
        open set stays within the cache capacity."""
        geometry = CacheGeometry.set_associative(16, ways=4)
        stage = QueryEngine("SELECT COUNT GROUPBY srcip") \
            .compiled.groupby_stages[0]
        store = WindowedVectorStore(stage, geometry, window=500)
        keys = np.arange(20_000, dtype=np.int64).reshape(-1, 1)
        for lo in range(0, len(keys), 400):
            store.add_batch(keys[lo:lo + 400], {})
        open_now = int(np.count_nonzero(store._open_mask[:store._nkeys]))
        assert open_now <= geometry.capacity
        assert store.result_table().rows[0]["COUNT"] == 1

    def test_buffer_drains_at_window_boundary(self):
        stage = QueryEngine("SELECT COUNT GROUPBY srcip") \
            .compiled.groupby_stages[0]
        store = WindowedVectorStore(stage, GEOM, window=100)
        keys = np.ones((60, 1), dtype=np.int64)
        store.add_batch(keys, {})
        assert store._buffered == 60          # below window: buffered
        store.add_batch(keys, {})
        assert store._buffered == 0           # crossed window: executed
        assert store._total == 120

    def test_add_batch_after_finalize_rejected(self):
        from repro.core.errors import HardwareError
        stage = QueryEngine("SELECT COUNT GROUPBY srcip") \
            .compiled.groupby_stages[0]
        store = WindowedVectorStore(stage, GEOM, window=100)
        store.add_batch(np.ones((10, 1), dtype=np.int64), {})
        store.finalize()
        with pytest.raises(HardwareError):
            store.add_batch(np.ones((10, 1), dtype=np.int64), {})


class TestNetworkSessions:
    @pytest.fixture(scope="class")
    def fabric(self):
        from repro.network.simulator import NetworkSimulator
        from repro.network.topology import LinkSpec, leaf_spine

        topo = leaf_spine(2, 2, 2, edge_link=LinkSpec(rate_gbps=5.0))
        sim = NetworkSimulator(topo)
        hosts = sorted(topo.hosts())
        t = 0
        for i in range(500):
            t += 2000
            src = hosts[i % len(hosts)]
            dst = hosts[(i + 1 + i // 7) % len(hosts)]
            if src != dst:
                sim.inject(time_ns=t, src=src, dst=dst,
                           pkt_len=400 + (i % 900), srcport=2000 + i % 5)
        return sim, sim.run()

    def network_observables(self, report):
        return (
            {q: sorted(map(tuple, (sorted(r.items()) for r in t.rows)))
             for q, t in report.combined.items()},
            {sw: {q: t.rows for q, t in tables.items()}
             for sw, tables in report.per_switch.items()},
            report.combinable,
        )

    def test_streaming_deployment_matches_one_shot(self, fabric):
        from repro.telemetry.deploy import NetworkDeployment

        sim, table = fabric
        source = "SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple"
        one_shot = NetworkDeployment(source, sim, geometry=GEOM) \
            .run(table.records)
        deploy = NetworkDeployment(source, sim, geometry=GEOM)
        session = deploy.open(window=333)
        for batch in chunked(table, 441):
            session.ingest(batch)
        mid = session.results()                # streaming snapshot
        report = session.close()
        assert self.network_observables(mid) == \
            self.network_observables(one_shot)
        assert self.network_observables(report) == \
            self.network_observables(one_shot)

    def test_single_pass_routing_matches_per_switch_masks(self, fabric):
        """The argsort(owner) batch split must hand every switch
        exactly the rows `owner == i` masking would, in arrival
        order."""
        import numpy as np

        from repro.telemetry.deploy import NetworkDeployment

        sim, table = fabric
        # A columnar copy: earlier tests may have flipped the shared
        # table's authority to rows, which would take the row-routing
        # path instead of the single-pass split under test.
        table = ObservationTable.from_arrays(table.columns())
        deploy = NetworkDeployment("SELECT COUNT GROUPBY qid", sim,
                                   geometry=GEOM)
        session = deploy.open(window=128)

        routed: dict[str, list] = {}
        originals = {name: sess.ingest
                     for name, sess in session.sessions.items()}

        def capture(name):
            def _ingest(batch):
                routed.setdefault(name, []).append(batch)
                return originals[name](batch)
            return _ingest

        for name, sess in session.sessions.items():
            sess.ingest = capture(name)
        session.ingest(table)
        session.close()

        columns = table.columns()
        qid = columns["qid"]
        owner_of = deploy._queue_owner
        for name in session.sessions:
            want = np.array([i for i, q in enumerate(qid.tolist())
                             if owner_of.get(q) == name], dtype=np.int64)
            got = routed.get(name, [])
            if not len(want):
                assert not got
                continue
            merged = {
                col: np.concatenate([b.columns()[col] for b in got])
                for col in columns
            }
            for col, arr in columns.items():
                assert np.array_equal(merged[col], arr[want]), (name, col)

    def test_network_close_retryable_after_partial_failure(self, fabric):
        """If one switch's close() fails, the switches that already
        finalized must not wedge the session: a retry resumes with the
        remaining sessions and still produces the combined report."""
        from repro.telemetry.deploy import NetworkDeployment

        sim, table = fabric
        deploy = NetworkDeployment("SELECT COUNT GROUPBY qid", sim,
                                   geometry=GEOM)
        session = deploy.open(window=256)
        session.ingest(table)
        victim = list(session.sessions)[-1]
        real_close = session.sessions[victim].close
        calls = {"n": 0}

        def flaky_close(*args, **kwargs):
            if calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("transient close failure")
            return real_close(*args, **kwargs)

        session.sessions[victim].close = flaky_close
        with pytest.raises(RuntimeError, match="transient"):
            session.close()
        assert not session._closed
        # Half-closed window: reads stay coherent (finalized switches
        # answer from their stored reports), ingest is refused clearly.
        mid = session.results()
        assert set(mid.per_switch) == set(session.sessions)
        stats = session.cache_stats()
        assert set(stats) == set(session.sessions)
        with pytest.raises(SessionClosedError, match="partially closed"):
            session.ingest(table)
        report = session.close()               # retry resumes
        assert victim in report.per_switch
        total = sum(r["COUNT"] for r in
                    report.combined[deploy.compiled.result].rows)
        assert total == len(table)

    def test_network_session_close_is_final(self, fabric):
        from repro.telemetry.deploy import NetworkDeployment

        sim, table = fabric
        deploy = NetworkDeployment("SELECT COUNT GROUPBY qid", sim,
                                   geometry=GEOM)
        session = deploy.open(window=256)
        session.ingest(table)
        assert session.cache_stats()           # open: fine
        session.close()
        with pytest.raises(SessionClosedError):
            session.ingest(table)
        with pytest.raises(SessionClosedError):
            session.results()
        with pytest.raises(SessionClosedError):
            session.cache_stats()
        with pytest.raises(SessionClosedError):
            session.close()
        with pytest.raises(SessionClosedError):
            deploy.cache_stats()               # proxies the closed session

    def test_simulator_streams_into_session(self, fabric):
        """stream_into() batches concatenate to run()'s table exactly,
        and drive a session to the same results."""
        from repro.network.simulator import NetworkSimulator
        from repro.network.topology import linear_chain

        def build():
            topo = linear_chain(3)
            sim = NetworkSimulator(topo)
            for i in range(300):
                sim.inject(time_ns=i * 50_000, src="h0", dst="h1",
                           pkt_len=500 + i % 700)
            return sim

        table = build().run()
        qe = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple",
                         geometry=GEOM)
        base = observables(qe.run(table))

        class Collecting:
            def __init__(self, session):
                self.session = session
                self.batches = []

            def ingest(self, batch):
                self.batches.append(batch)
                self.session.ingest(batch)

        session = qe.open(window=128)
        collector = Collecting(session)
        streamed = build().stream_into(collector, chunk_size=100)
        assert streamed == len(table)
        merged = {
            name: np.concatenate([b.columns()[name]
                                  for b in collector.batches])
            for name in table.columns()
        }
        for name, arr in table.columns().items():
            assert np.array_equal(merged[name], arr), name
        assert observables(session.close()) == base


class TestLazyColumnarResultTable:
    def schema(self):
        return QueryEngine("SELECT COUNT GROUPBY srcip") \
            .compiled.groupby_stages[0].output

    def test_from_columns_is_columnar_until_rows_touched(self):
        table = ResultTable.from_columns(self.schema(), {
            "srcip": np.array([3, 1, 2]), "COUNT": np.array([7, 8, 9])})
        assert table.is_columnar
        assert len(table) == 3
        assert table.column("COUNT") == [7, 8, 9]      # still columnar
        assert table.is_columnar
        rows = table.rows                              # materialises
        assert rows == [{"srcip": 3, "COUNT": 7}, {"srcip": 1, "COUNT": 8},
                        {"srcip": 2, "COUNT": 9}]
        assert not table.is_columnar
        assert all(isinstance(r["COUNT"], int) for r in rows)

    def test_sort_key_columnar_matches_row_sort(self):
        columns = {"srcip": np.array([3, 1, 2]), "COUNT": np.array([7, 8, 9])}
        a = ResultTable.from_columns(self.schema(), dict(columns))
        b = ResultTable.from_columns(self.schema(), dict(columns))
        _ = b.rows                                     # force row authority
        assert a.sort_key().rows == b.sort_key().rows
        assert a.rows[0] == {"srcip": 1, "COUNT": 8}

    def test_rows_setter_drops_columns(self):
        table = ResultTable.from_columns(self.schema(), {
            "srcip": np.array([1]), "COUNT": np.array([2])})
        table.rows = [{"srcip": 5, "COUNT": 6}]
        assert not table.is_columnar and len(table) == 1

    def test_compare_tables_columnar_equals_row_path(self):
        schema = self.schema()
        h_cols = {"srcip": np.array([1, 2, 3]),
                  "COUNT": np.array([1.0, np.inf, 5.0])}
        t_cols = {"srcip": np.array([1, 2, 4]),
                  "COUNT": np.array([1.0 + 5e-10, np.inf, 7.0])}
        columnar = compare_tables(
            ResultTable.from_columns(schema, h_cols),
            ResultTable.from_columns(schema, t_cols))
        h_rows = ResultTable.from_columns(schema, h_cols)
        t_rows = ResultTable.from_columns(schema, t_cols)
        _ = h_rows.rows, t_rows.rows
        assert columnar == compare_tables(h_rows, t_rows)

    def test_engine_result_tables_are_columnar_on_vector_path(self, trace):
        qe = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip",
                         geometry=GEOM, engine="vector")
        report = qe.run(trace)
        assert report.result.is_columnar
