"""``repro check`` — concurrency & resource-safety static analysis.

A pluggable AST+CFG checker framework for the serve/shard/checkpoint
runtime: checkers register :func:`~repro.analysis.static.base.checker`
functions emitting stable ``RPR-Cxxx`` findings (rendered through
:mod:`repro.telemetry.diagnostics`), with inline
``# repro: allow[RPR-Cxxx]`` suppressions that must name the code.

Public surface:

* :func:`check_paths` / :func:`check_source` — run the checkers
* :class:`CheckReport` / :class:`Finding` — results
* :func:`iter_rules` — the code↔checker table
* ``DETERMINISM_SCOPE`` / :func:`determinism_modules` — the replay-
  critical module set shared with ``tests/test_self_lint.py``
"""

from repro.analysis.static.base import (
    CheckerInfo,
    Finding,
    ModuleContext,
    all_checkers,
    checker,
)
from repro.analysis.static.checkers.determinism import (
    DETERMINISM_CODES,
    DETERMINISM_SCOPE,
    determinism_modules,
)
from repro.analysis.static.runner import (
    CheckReport,
    check_paths,
    check_source,
    iter_rules,
)

__all__ = [
    "CheckReport",
    "CheckerInfo",
    "DETERMINISM_CODES",
    "DETERMINISM_SCOPE",
    "Finding",
    "ModuleContext",
    "all_checkers",
    "check_paths",
    "check_source",
    "checker",
    "determinism_modules",
    "iter_rules",
]
