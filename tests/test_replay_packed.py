"""Differential property tests for the packed FIFO/random replay.

The packed per-set array replay (`vector_cache._replay_segments`) and
the windowed schedulers built on it must be **bit-identical** — per
access, not just in aggregate — to the per-access reference
(:class:`KeyValueCache` / the scalar replay loops), across:

* both ablation policies (FIFO, random) and its counter-based RNG;
* randomized geometries (bucket counts, associativities, seeds);
* at least three window partitionings per stream, so carried ring
  state, occupancy, and RNG counters are exercised at every cut;
* adversarial streams (single key, all-unique, cyclic working sets at
  the capacity boundary, hot/cold interleaves).

Seed plumbing is audited here too: the one-shot row loop, the one-shot
vector engine, the sweep runner's `stats_fn` closure, and the windowed
schedulers must all derive the random policy's replay state from the
same seed — equal counters for equal seeds, different draws for
different seeds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.switch.kvstore.vector_cache as vector_cache
import repro.switch.kvstore.windowed_store as windowed_store
from repro.switch.kvstore.cache import (
    CacheGeometry,
    KeyValueCache,
    replay_victim,
    simulate_eviction_count,
)
from repro.switch.kvstore.vector_cache import (
    VectorCacheSim,
    replay_victim_array,
)
from repro.switch.kvstore.windowed_store import (
    _PackedWindowScheduler,
    _ReplayWindowScheduler,
)

POLICIES = ("fifo", "random")


def counters(stats):
    return (stats.accesses, stats.hits, stats.misses,
            stats.insertions, stats.evictions)


def reference_schedule(keys, geometry, policy, seed):
    """Per-access miss flags and stats from the per-access reference
    cache — the ground truth every replay engine must reproduce."""
    cache = KeyValueCache(geometry, policy=policy, seed=seed)
    miss = np.zeros(len(keys), dtype=bool)
    for i, key in enumerate(keys):
        before = cache.stats.misses
        cache.access(key, lambda: None)
        miss[i] = cache.stats.misses != before
    return miss, cache.stats


@pytest.fixture
def force_packed(monkeypatch):
    """Force the packed replay paths — including the vectorized round
    loop, which would otherwise hand tiny geometries straight to the
    scalar tail finisher — even on tiny streams."""
    monkeypatch.setattr(vector_cache, "_PACKED_MIN_PARALLELISM", 0)
    monkeypatch.setattr(vector_cache, "_PACKED_MIN_ACTIVE", 0)
    monkeypatch.setattr(windowed_store, "PACKED_WINDOW_MIN_SETS", 1)


class TestVictimRng:
    @given(seed=st.integers(min_value=0, max_value=2**63),
           buckets=st.lists(st.integers(min_value=0, max_value=2**40),
                            min_size=1, max_size=50),
           count=st.integers(min_value=0, max_value=2**32),
           size=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_array_matches_scalar(self, seed, buckets, count, size):
        arr = np.asarray(buckets, dtype=np.int64)
        cnt = np.full(len(arr), count, dtype=np.uint64)
        got = replay_victim_array(seed, arr, cnt, size)
        for b, v in zip(buckets, got.tolist()):
            assert replay_victim(seed, b, count, size) == v

    def test_draws_depend_on_seed_bucket_and_counter(self):
        draws = {(s, b, c): replay_victim(s, b, c, 1 << 20)
                 for s in (0, 1) for b in (0, 1) for c in (0, 1)}
        assert len(set(draws.values())) == len(draws)


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    keys=st.lists(st.integers(min_value=-3, max_value=40), max_size=300),
    n_buckets=st.integers(min_value=1, max_value=9),
    m_slots=st.integers(min_value=2, max_value=11),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=4),
)
def test_packed_replay_matches_reference(force_packed, keys, n_buckets,
                                         m_slots, policy, seed):
    """Core property: forced-packed one-shot replay == per-access
    reference cache, counters and per-access miss flags both."""
    geometry = CacheGeometry(n_buckets, m_slots)
    ref_miss, ref_stats = reference_schedule(keys, geometry, policy, seed)
    sim = VectorCacheSim(np.asarray(keys, dtype=np.int64), seed=seed)
    stats, sched = sim.stats_and_schedule(geometry, policy=policy)
    assert counters(stats) == counters(ref_stats)
    assert np.array_equal(sched, ref_miss)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    keys=st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                  max_size=250),
    n_buckets=st.integers(min_value=1, max_value=7),
    m_slots=st.integers(min_value=2, max_value=8),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=3),
    cuts=st.lists(st.integers(min_value=1, max_value=249), max_size=6),
)
def test_windowed_schedulers_match_for_every_partitioning(
        force_packed, keys, n_buckets, m_slots, policy, seed, cuts):
    """Both windowed schedulers (packed ring carry and the per-access
    reference carry), fed arbitrary window partitionings of the same
    stream, must reproduce the one-shot schedule and eviction count
    exactly — plus three fixed partitionings (per-access, small, whole
    stream)."""
    geometry = CacheGeometry(n_buckets, m_slots)
    arr = np.asarray(keys, dtype=np.int64)
    keys2d = arr.reshape(-1, 1)
    # Window key ids: dense first-occurrence ids, like the store's
    # factorization.  The scheduler hashes the raw key columns, so the
    # reference uses 1-tuples (mix_key of a 1-tuple == 1-column array).
    _, first_idx = np.unique(arr, return_index=True)
    order = np.argsort(first_idx)
    gid_of = {int(arr[first_idx[o]]): g for g, o in enumerate(order)}
    gid = np.asarray([gid_of[int(k)] for k in keys], dtype=np.int64)
    ref_miss, ref_stats = reference_schedule(
        [(int(k),) for k in keys], geometry, policy, seed)

    n = len(keys)
    partitionings = [
        [1] * n,                                   # one window per access
        [7] * (n // 7) + ([n % 7] if n % 7 else []),
        [n],                                       # single window
    ]
    if cuts:
        bounds = sorted({c for c in cuts if c < n})
        sizes = np.diff([0, *bounds, n]).tolist()
        partitionings.append([s for s in sizes if s])
    for sizes in partitionings:
        for sched_cls in (_PackedWindowScheduler, _ReplayWindowScheduler):
            sched = sched_cls(geometry, policy, seed)
            miss_parts, evictions = [], 0
            lo = 0
            resident = None
            for size in sizes:
                hi = lo + size
                miss, ev, resident = sched.schedule(keys2d[lo:hi],
                                                    gid[lo:hi])
                miss_parts.append(miss)
                evictions += ev
                lo = hi
            got = np.concatenate(miss_parts) if miss_parts else \
                np.zeros(0, dtype=bool)
            assert np.array_equal(got, ref_miss), \
                (sched_cls.__name__, sizes)
            assert evictions == ref_stats.evictions, \
                (sched_cls.__name__, sizes)
            # Final residency must match the reference cache's content
            # (schedulers report either gid arrays or a gid bitmap).
            cache = KeyValueCache(geometry, policy=policy, seed=seed)
            for k in keys:
                cache.access((int(k),), lambda: None)
            want = {gid_of[int(e.key[0])] for e in cache.entries()}
            resident = np.asarray(resident)
            got_res = np.flatnonzero(resident) \
                if resident.dtype == bool else resident
            assert set(got_res.tolist()) == want


class TestAdversarialStreams:
    GEOMETRIES = (
        CacheGeometry.set_associative(64, ways=4),
        CacheGeometry.set_associative(32, ways=8),
        CacheGeometry(5, 3),                       # odd bucket count
    )

    def assert_match(self, keys):
        for geometry in self.GEOMETRIES:
            for policy in POLICIES:
                ref_miss, ref_stats = reference_schedule(
                    keys.tolist(), geometry, policy, 1)
                sim = VectorCacheSim(keys, seed=1)
                stats, sched = sim.stats_and_schedule(geometry,
                                                      policy=policy)
                assert counters(stats) == counters(ref_stats), \
                    (geometry, policy)
                assert np.array_equal(sched, ref_miss), (geometry, policy)

    def test_single_key(self, force_packed):
        self.assert_match(np.zeros(3000, dtype=np.int64))

    def test_all_unique(self, force_packed):
        self.assert_match(np.arange(3000, dtype=np.int64))

    @pytest.mark.parametrize("extra", [-1, 0, 1])
    def test_cyclic_at_capacity_boundary(self, force_packed, extra):
        keys = np.tile(np.arange(64 + extra, dtype=np.int64), 40)
        self.assert_match(keys)

    def test_hot_cold_interleave(self, force_packed):
        rng = np.random.default_rng(7)
        keys = np.empty(6000, dtype=np.int64)
        keys[0::2] = rng.integers(0, 6, 3000)
        keys[1::2] = rng.integers(6, 3000, 3000)
        self.assert_match(keys)

    def test_round_to_tail_handover(self, monkeypatch):
        """A skewed stream drops below the active-set cutoff while the
        hot sets still have long tails: the vectorized rounds must hand
        their mid-segment ring state to the scalar finisher exactly."""
        monkeypatch.setattr(vector_cache, "_PACKED_MIN_PARALLELISM", 0)
        rng = np.random.default_rng(13)
        keys = np.where(rng.random(20_000) < 0.8,
                        rng.integers(0, 3, 20_000),          # 2-3 hot sets
                        rng.integers(3, 2_000, 20_000)).astype(np.int64)
        geometry = CacheGeometry.set_associative(512, ways=8)  # 64 sets
        for policy in POLICIES:
            ref_miss, ref_stats = reference_schedule(
                keys.tolist(), geometry, policy, 2)
            stats, sched = VectorCacheSim(keys, seed=2).stats_and_schedule(
                geometry, policy=policy)
            assert counters(stats) == counters(ref_stats), policy
            assert np.array_equal(sched, ref_miss), policy

    def test_packed_equals_scalar_paths(self, monkeypatch):
        """The parallelism dispatch is an implementation detail: both
        paths must produce the same schedule on the same stream."""
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 500, 8000).astype(np.int64)
        geometry = CacheGeometry.set_associative(128, ways=4)
        for policy in POLICIES:
            monkeypatch.setattr(vector_cache, "_PACKED_MIN_PARALLELISM", 0)
            packed = VectorCacheSim(keys, seed=3).stats_and_schedule(
                geometry, policy=policy)
            monkeypatch.setattr(vector_cache, "_PACKED_MIN_PARALLELISM",
                                10**9)
            scalar = VectorCacheSim(keys, seed=3).stats_and_schedule(
                geometry, policy=policy)
            assert counters(packed[0]) == counters(scalar[0])
            assert np.array_equal(packed[1], scalar[1])


class TestSeedPlumbing:
    """The random policy's replay state must be a function of the seed
    alone — identical draws from every entry point."""

    def stream(self):
        rng = np.random.default_rng(11)
        return rng.integers(0, 400, 20_000).astype(np.int64)

    def test_every_entry_point_agrees_per_seed(self):
        from repro.analysis.sweep_exec import stats_fn

        keys = self.stream()
        geometry = CacheGeometry.set_associative(256, ways=4)
        per_seed = []
        for seed in (0, 7, 2016_04):
            row = simulate_eviction_count(keys.tolist(), geometry,
                                          policy="random", seed=seed,
                                          engine="row")
            vec = VectorCacheSim(keys, seed=seed).stats(geometry,
                                                        policy="random")
            swept = stats_fn(keys, seed, "auto")(geometry, "random")
            assert counters(vec) == counters(row) == counters(swept), seed
            per_seed.append(counters(row))
        # Different seeds change placement and draws: the counters
        # should not all collapse to one value on a contended cache.
        assert len(set(per_seed)) > 1

    def test_windowed_replay_state_derives_from_seed(self):
        """Windowed scheduling with the same seed reproduces the
        one-shot schedule; a different seed diverges (the carried RNG
        counters really are seeded, not global state)."""
        keys = self.stream()[:5000]
        keys2d = keys.reshape(-1, 1)
        geometry = CacheGeometry.set_associative(64, ways=4)
        sim = VectorCacheSim(keys2d, seed=5)
        _, base = sim.stats_and_schedule(geometry, policy="random")
        _, first_idx = np.unique(keys, return_index=True)
        order = np.argsort(first_idx)
        gid_of = {int(keys[first_idx[o]]): g for g, o in enumerate(order)}
        gid = np.asarray([gid_of[int(k)] for k in keys], dtype=np.int64)

        def windowed(seed):
            sched = _PackedWindowScheduler(geometry, "random", seed)
            parts = []
            for lo in range(0, len(keys), 611):
                miss, _, _ = sched.schedule(keys2d[lo:lo + 611],
                                            gid[lo:lo + 611])
                parts.append(miss)
            return np.concatenate(parts)

        assert np.array_equal(windowed(5), base)
        assert not np.array_equal(windowed(6), base)
