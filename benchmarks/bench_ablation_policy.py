"""A-1 — eviction-policy ablation (the paper chooses LRU, §3.2).

The paper states "Currently, we use the least recently used (LRU)
cache-eviction policy" without evaluating alternatives.  This ablation
fills that gap: eviction fractions for LRU vs FIFO vs random at the
target geometry, over the same CAIDA-like key stream.

Expected outcome: LRU ≤ FIFO ≈ random — flow locality is what LRU
exploits, justifying the paper's choice; the gap narrows as the cache
grows.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_percent, format_table
from repro.switch.kvstore.cache import CacheGeometry, simulate_eviction_count
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

SCALE = 1.0 / 512.0
POLICIES = ("lru", "fifo", "random")
CAPACITIES = tuple(1 << e for e in range(16, 21))  # paper scale


@pytest.fixture(scope="module")
def keys():
    # The simulator consumes the numpy stream natively (the vector
    # engine replays FIFO/random exactly, including the RNG draws).
    return generate_key_stream(CaidaTraceConfig(scale=SCALE))


@pytest.fixture(scope="module")
def ablation(report, keys):
    results: dict[tuple[str, int], float] = {}
    rows = []
    for paper_pairs in CAPACITIES:
        scaled = max(8, int(paper_pairs * SCALE) // 8 * 8)
        geometry = CacheGeometry.set_associative(scaled, ways=8)
        row = [f"2^{paper_pairs.bit_length() - 1}"]
        for policy in POLICIES:
            stats = simulate_eviction_count(keys, geometry, policy=policy)
            results[(policy, paper_pairs)] = stats.eviction_fraction
            row.append(format_percent(stats.eviction_fraction))
        rows.append(row)
    text = format_table(
        ["pairs"] + list(POLICIES), rows,
        title=f"A-1 — eviction policy ablation, 8-way cache "
              f"(trace scale {SCALE:.4g})",
    )
    report("A-1: eviction-policy ablation", text)
    return results


def test_lru_never_loses_to_alternatives(ablation):
    for paper_pairs in CAPACITIES:
        lru = ablation[("lru", paper_pairs)]
        for policy in ("fifo", "random"):
            assert lru <= ablation[(policy, paper_pairs)] + 0.005


def test_policies_converge_with_size(ablation):
    small, large = CAPACITIES[0], CAPACITIES[-1]
    gap_small = ablation[("fifo", small)] - ablation[("lru", small)]
    gap_large = ablation[("fifo", large)] - ablation[("lru", large)]
    assert gap_large <= gap_small + 0.005


def _bench_policy(benchmark, keys, policy):
    geometry = CacheGeometry.set_associative(1 << 10, ways=8)
    subset = keys[:200_000]

    def run():
        return simulate_eviction_count(subset, geometry, policy=policy)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.accesses == len(subset)


def test_policy_throughput_lru(benchmark, keys, ablation):
    _bench_policy(benchmark, keys, "lru")


def test_policy_throughput_fifo(benchmark, keys, ablation):
    _bench_policy(benchmark, keys, "fifo")


def test_policy_throughput_random(benchmark, keys, ablation):
    _bench_policy(benchmark, keys, "random")
