"""Compiled query plans: the configurations handed to the switch model.

The compiler (:mod:`repro.core.compiler`) lowers a resolved program to a
:class:`SwitchProgram`: the set of switch-resident stages (parser
fields, match-action filters, key-value-store aggregations) plus the
queries that must run in the collection software (downstream stages of
composed queries and the relational part of joins, which the paper
reduces to ``GROUPBY`` on-switch plus a read-time join, §2/§3.2).

Everything here is a passive description — execution lives in
:mod:`repro.switch` (hardware) and :mod:`repro.telemetry` (runtime).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast_nodes import Expr, format_expr
from .linearity import LinearityResult
from .merge_synthesis import MergeSpec
from .semantics import Column, FoldInstance, ResolvedQuery, TableSchema


@dataclass(frozen=True)
class KeyLayout:
    """Hardware key: ordered fields and total width."""

    fields: tuple[str, ...]
    bits: int


@dataclass(frozen=True)
class ValueSlot:
    """One register of the hardware value: a state variable or an
    auxiliary merge register."""

    name: str
    bits: int
    kind: str  # "state" | "aux"


@dataclass(frozen=True)
class ValueLayout:
    """Hardware value layout for one key-value store instance."""

    slots: tuple[ValueSlot, ...]

    @property
    def bits(self) -> int:
        return sum(s.bits for s in self.slots)

    @property
    def state_bits(self) -> int:
        return sum(s.bits for s in self.slots if s.kind == "state")

    @property
    def aux_bits(self) -> int:
        return sum(s.bits for s in self.slots if s.kind == "aux")


@dataclass(frozen=True)
class AluProgram:
    """Per-packet state update program for one fold.

    ``update_exprs`` maps each state variable to its (if-converted)
    update expression; the hardware model evaluates all of them against
    the pre-update state, which matches the paper's single-cycle
    read-modify-write discipline.  ``op_count`` and ``depth`` quantify
    the combinational work for the §3.3 feasibility discussion (linear
    updates are fused multiply-adds; others need Domino-style atoms).
    """

    update_exprs: dict[str, Expr]
    op_count: int
    depth: int

    def describe(self) -> str:
        return "; ".join(
            f"{var} = {format_expr(expr)}" for var, expr in self.update_exprs.items()
        )


@dataclass(frozen=True)
class FoldConfig:
    """Everything the hardware needs to run one fold instance."""

    column: str
    instance: FoldInstance
    linearity: LinearityResult
    merge: MergeSpec
    alu: AluProgram
    state_bits: dict[str, int]

    @property
    def mergeable(self) -> bool:
        return self.merge.mergeable


@dataclass(frozen=True)
class GroupByStage:
    """A key-value-store aggregation stage (paper §3.2)."""

    query_name: str
    key: KeyLayout
    folds: tuple[FoldConfig, ...]
    value: ValueLayout
    where: Expr | None  # pre-filter, realised as a match stage (§3.1)
    output: TableSchema

    @property
    def pair_bits(self) -> int:
        """Bits per key-value pair — the unit of the §4 cache sizing."""
        return self.key.bits + self.value.bits

    @property
    def mergeable(self) -> bool:
        return all(f.mergeable for f in self.folds)


@dataclass(frozen=True)
class SelectStage:
    """A per-packet filter/projection stage (paper §3.1: match-action
    pipeline realises ``SELECT ... WHERE``)."""

    query_name: str
    where: Expr | None
    columns: tuple[Column, ...]
    output: TableSchema


@dataclass(frozen=True)
class SoftwareStage:
    """A query stage executed in the collection software over upstream
    result tables (composed queries and JOINs)."""

    query: ResolvedQuery
    reason: str


@dataclass(frozen=True)
class SwitchProgram:
    """A full compiled program.

    Attributes:
        parse_fields: Every observation-table field the programmable
            parser must extract for this program (§3.1).
        select_stages: Per-packet stages that emit matching records.
        groupby_stages: Key-value-store stages (one per on-switch
            ``GROUPBY``).
        software_stages: Stages the runtime evaluates off-switch, in
            dependency order.
        result: Name of the program's result query.
        params: Free parameters that must be bound before running.
    """

    parse_fields: tuple[str, ...]
    select_stages: tuple[SelectStage, ...] = ()
    groupby_stages: tuple[GroupByStage, ...] = ()
    software_stages: tuple[SoftwareStage, ...] = ()
    result: str = ""
    params: frozenset[str] = frozenset()

    def stage_for(self, query_name: str):
        for stage in self.select_stages + self.groupby_stages:
            if stage.query_name == query_name:
                return stage
        for stage in self.software_stages:
            if stage.query.name == query_name:
                return stage
        raise KeyError(query_name)

    def describe(self) -> str:
        """Human-readable plan summary (used by examples and docs)."""
        lines = [f"parse fields: {', '.join(self.parse_fields)}"]
        for stage in self.select_stages:
            where = format_expr(stage.where) if stage.where is not None else "true"
            cols = ", ".join(c.name for c in stage.columns)
            lines.append(f"[switch select {stage.query_name}] match {where} -> emit ({cols})")
        for stage in self.groupby_stages:
            where = format_expr(stage.where) if stage.where is not None else "true"
            lines.append(
                f"[switch groupby {stage.query_name}] match {where}; "
                f"key=({', '.join(stage.key.fields)}) {stage.key.bits}b; "
                f"value={stage.value.bits}b "
                f"({'mergeable' if stage.mergeable else 'value-list'})"
            )
            for fold in stage.folds:
                lines.append(f"    {fold.column}: {fold.alu.describe()} "
                             f"[{fold.merge.strategy}]")
        for stage in self.software_stages:
            lines.append(f"[software {stage.query.kind} {stage.query.name}] ({stage.reason})")
        lines.append(f"result: {self.result}")
        return "\n".join(lines)
