"""Clean twin of bad_determinism: monotonic time and a seeded
generator are the allowed forms."""
import random
import time


def jitter(seed):
    start = time.monotonic()
    rng = random.Random(seed)
    time.sleep(0)
    return start + rng.random()
