"""End-to-end telemetry runtime and result comparison utilities."""

from .client import ClientError, IngestClient, stream_file
from .deploy import NetworkDeployment, NetworkRunReport, NetworkSession
from .diagnostics import Diagnostic, DiagnosticsReport, diagnostic_code
from .results import TableDiff, assert_tables_match, compare_tables
from .runtime import QueryEngine, QueryInfo, RunReport, run
from .serve import IngestServer, TraceTailer
from .session import TelemetrySession

__all__ = [
    "ClientError",
    "Diagnostic",
    "DiagnosticsReport",
    "diagnostic_code",
    "IngestClient",
    "IngestServer",
    "NetworkDeployment",
    "NetworkRunReport",
    "NetworkSession",
    "QueryEngine",
    "QueryInfo",
    "RunReport",
    "TableDiff",
    "TelemetrySession",
    "TraceTailer",
    "assert_tables_match",
    "compare_tables",
    "run",
    "stream_file",
]
