"""Count-Min sketch — the baseline the paper's related work positions
against (§5).

Sketch-based systems (OpenSketch, UnivMon, counter braids — refs [39,
29, 30]) track flow counters in sub-linear memory at the price of
over-estimation error.  The paper argues its split key-value store
"sidesteps the accuracy-memory tradeoff of sketches for the broad
class of queries that are linear-in-state": same SRAM budget, exact
answers (in the backing store), at the cost of an eviction stream.

This module implements the classic Count-Min sketch [Cormode &
Muthukrishnan 2005] with the *conservative update* optimisation, plus
an area accounting compatible with :mod:`repro.switch.area`, so the
``bench_baseline_sketch`` experiment can compare the two designs at
equal on-chip memory.

Count-Min guarantees, for width ``w = ⌈e/ε⌉`` and depth ``d =
⌈ln 1/δ⌉``: estimates never under-count, and over-count by at most
``ε·N`` with probability ``1−δ`` (``N`` = total stream count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.errors import HardwareError

from .cache import splitmix64

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class SketchGeometry:
    """``depth`` rows × ``width`` counters of ``counter_bits`` each."""

    width: int
    depth: int
    counter_bits: int = 24   # §4's counter width, for a fair comparison

    def __post_init__(self) -> None:
        if self.width < 1 or self.depth < 1:
            raise HardwareError(
                f"invalid sketch geometry {self.width}x{self.depth}")

    @property
    def total_bits(self) -> int:
        return self.width * self.depth * self.counter_bits

    @classmethod
    def for_bits(cls, total_bits: int, depth: int = 4,
                 counter_bits: int = 24) -> "SketchGeometry":
        """Largest sketch fitting in ``total_bits`` at fixed depth —
        how an architect would spend the same SRAM the cache uses."""
        width = max(1, total_bits // (depth * counter_bits))
        return cls(width=width, depth=depth, counter_bits=counter_bits)


class CountMinSketch:
    """Count-Min sketch over hashable keys.

    Args:
        geometry: Row/column layout.
        conservative: Enable conservative update (only raise the
            minimal counters), which tightens over-estimation at no
            memory cost — the variant hardware implementations favour.
        seed: Base hash seed; rows use derived seeds.
    """

    def __init__(self, geometry: SketchGeometry, conservative: bool = False,
                 seed: int = 0):
        self.geometry = geometry
        self.conservative = conservative
        self._rows: list[list[int]] = [
            [0] * geometry.width for _ in range(geometry.depth)
        ]
        self._seeds = [splitmix64((seed + row + 1) & _MASK64)
                       for row in range(geometry.depth)]
        self.total = 0
        self._saturated = (1 << geometry.counter_bits) - 1

    # -- operations ----------------------------------------------------------

    def _indices(self, key: Hashable) -> list[int]:
        if isinstance(key, tuple):
            base = 0
            for part in key:
                base = splitmix64((base ^ int(part)) & _MASK64)
        else:
            base = splitmix64(int(key) & _MASK64)
        return [splitmix64(base ^ s) % self.geometry.width for s in self._seeds]

    def update(self, key: Hashable, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key`` (one per packet in the
        Fig. 2 per-flow-counter use)."""
        self.total += count
        indices = self._indices(key)
        if self.conservative:
            current = min(self._rows[r][i] for r, i in enumerate(indices))
            target = min(current + count, self._saturated)
            for row, index in enumerate(indices):
                if self._rows[row][index] < target:
                    self._rows[row][index] = target
        else:
            for row, index in enumerate(indices):
                cell = self._rows[row][index] + count
                self._rows[row][index] = min(cell, self._saturated)

    def estimate(self, key: Hashable) -> int:
        """Point estimate — never an under-count (absent saturation)."""
        indices = self._indices(key)
        return min(self._rows[row][index] for row, index in enumerate(indices))

    # -- evaluation helpers ----------------------------------------------------

    def relative_errors(self, truth: dict[Hashable, int]) -> list[float]:
        """Per-key relative over-estimation against exact counts."""
        errors = []
        for key, exact in truth.items():
            if exact <= 0:
                continue
            errors.append((self.estimate(key) - exact) / exact)
        return errors

    def occupied_fraction(self) -> float:
        occupied = sum(1 for row in self._rows for cell in row if cell)
        return occupied / (self.geometry.width * self.geometry.depth)


def run_count_query(keys: Iterable[Hashable], geometry: SketchGeometry,
                    conservative: bool = False, seed: int = 0) -> CountMinSketch:
    """Stream ``keys`` through a sketch (the SELECT COUNT GROUPBY
    workload of §4, on the baseline design)."""
    sketch = CountMinSketch(geometry, conservative=conservative, seed=seed)
    update = sketch.update
    for key in keys:
        update(key)
    return sketch
