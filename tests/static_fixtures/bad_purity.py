"""Seeded violations: RPR-C301 (non-data values) and RPR-C302
(runtime handles) inside a checkpoint payload."""
import threading


def _rebuild(rows):
    return rows


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = []

    def checkpoint_state(self):
        return {
            "rows": list(self._rows),
            "lock": self._lock,            # C302: handle attribute
            "rebuild": _rebuild,           # C301: function reference
            "thunk": lambda: None,         # C301: a lambda
            "guard": threading.Lock(),     # C302: handle constructor
        }
