"""Switch pipeline model: executes a compiled program over a packet
stream (paper §3.1-3.2).

The pipeline mirrors a match-action architecture [Bosshart et al.,
SIGCOMM'13]: the parser extracts the configured fields, ``WHERE``
predicates run as match stages, per-packet ``SELECT`` stages mirror
matching records to the collection layer, and each ``GROUPBY`` stage
drives one split key-value store.

One :class:`SwitchPipeline` models one switch.  The telemetry runtime
(:mod:`repro.telemetry`) installs pipelines on the simulated network's
switches, streams observations through them, and evaluates the
program's software stages over the collected results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.errors import (
    CheckpointError,
    CompileError,
    HardwareError,
    InterpreterError,
    SessionError,
)
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable, Row
from repro.core.plan import GroupByStage, SelectStage, SwitchProgram
from repro.core.vector_exec import (
    ArrayContext,
    VectorizationError,
    as_column,
    eval_array,
    eval_mask,
)
from repro.network.records import ColumnRowView, ObservationTable

from .alu import compile_predicate, compile_scalar
from .kvstore.cache import ENGINES, CacheGeometry, CacheStats
from .kvstore.split import SplitKeyValueStore, build_result_table
from .kvstore.vector_store import VectorSplitStore
from .kvstore.windowed_store import WindowedVectorStore
from .parser_model import ParserConfig, configure_parser

#: Chunk size for the batch execution path: large enough to amortise
#: the per-chunk vector work, small enough to keep the per-chunk Python
#: lists cache-friendly.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Default cache geometry: the paper's target configuration — 32 Mbit
#: at 128 bits/pair is 2^18 pairs, 8-way associative (§4).
DEFAULT_GEOMETRY = CacheGeometry.set_associative(1 << 18, ways=8)

GeometrySpec = CacheGeometry | Mapping[str, CacheGeometry]


#: Per-chunk row views for the per-packet fallbacks (shared helper —
#: see :class:`repro.network.records.ColumnRowView`).
_ColumnRow = ColumnRowView


class _LazyRowLists:
    """Per-chunk column→list conversion, deferred until a stage
    actually needs per-packet row views.

    The vector-store path never does, so fully vectorized runs skip
    the per-chunk ``tolist`` round trip entirely; row-path stages and
    vectorization fallbacks materialise once per chunk, exactly like
    the previous eager behaviour.
    """

    __slots__ = ("_chunk", "_fields", "_lists")

    def __init__(self, chunk: Mapping[str, np.ndarray],
                 fields: tuple[str, ...]):
        self._chunk = chunk
        self._fields = fields
        self._lists: dict[str, list] | None = None

    def materialize(self) -> dict[str, list]:
        if self._lists is None:
            self._lists = {name: self._chunk[name].tolist()
                           for name in self._fields}
        return self._lists


class _SelectRunner:
    """Per-packet filter + projection stage."""

    def __init__(self, stage: SelectStage, params: Mapping[str, Numeric]):
        self.stage = stage
        self.params = params
        self.predicate = compile_predicate(stage.where, params)
        self.extractors: list[tuple[str, Callable]] = [
            (col.name, compile_scalar(col.expr, params)) for col in stage.columns
        ]
        self.rows: list[Row] = []

    def process(self, record: object) -> None:
        if not self.predicate(record):
            return
        self.rows.append({name: fn(record) for name, fn in self.extractors})

    def process_batch(self, ctx: ArrayContext, rows: _LazyRowLists) -> None:
        """Vectorized chunk: one mask evaluation plus one array
        expression per output column, instead of per-packet calls."""
        try:
            mask = eval_mask(self.stage.where, ctx)
            if mask is None:
                sel_ctx = ctx
            else:
                sel = np.flatnonzero(mask)
                sel_ctx = ArrayContext(
                    {name: arr[sel] for name, arr in ctx.columns.items()},
                    self.params, len(sel),
                )
            names = [col.name for col in self.stage.columns]
            data = [
                as_column(eval_array(col.expr, sel_ctx), sel_ctx.n).tolist()
                for col in self.stage.columns
            ]
        except VectorizationError:
            row_lists = rows.materialize()
            for i in range(ctx.n):
                self.process(_ColumnRow(row_lists, i))
            return
        self.rows.extend(dict(zip(names, values)) for values in zip(*data))

    def result_table(self) -> ResultTable:
        return ResultTable(schema=self.stage.output, rows=self.rows)


class _GroupByRunner:
    """Match stage + split key-value store.

    The ``engine`` knob selects the store implementation on the batch
    path: ``"row"`` streams per-packet through
    :class:`SplitKeyValueStore`; ``"vector"``/``"auto"`` accumulate the
    WHERE-filtered key/value columns into a
    :class:`~repro.switch.kvstore.vector_store.VectorSplitStore`, whose
    schedule-driven execution runs at finalize time (bit-identical
    results).  Streams the vector store cannot take (non-integer keys,
    unvectorizable predicates, missing columns) fall back to the row
    store — the mode is decided once, on the first chunk, and is
    deterministic across chunks.
    """

    def __init__(self, stage: GroupByStage, geometry: CacheGeometry,
                 params: Mapping[str, Numeric], policy: str, seed: int,
                 refresh_interval: int | None = None, engine: str = "auto",
                 window: int | None = None, shard_pool=None,
                 shard_index: int = 0):
        self.stage = stage
        self.params = params
        self.engine = engine
        self.window = window
        self.predicate = compile_predicate(stage.where, params)
        self._config = dict(params=params, policy=policy, seed=seed,
                            refresh_interval=refresh_interval)
        self._geometry = geometry
        self._sharded = shard_pool is not None
        if self._sharded:
            from .kvstore.sharded import ShardedStoreProxy

            self.store = ShardedStoreProxy(
                stage, shard_index, shard_pool, geometry,
                params=params, seed=seed, window=window)
        else:
            self.store = SplitKeyValueStore(stage, geometry, **self._config)
        self._mode: str | None = None

    def _make_vector_store(self) -> VectorSplitStore:
        if self.window is not None:
            return WindowedVectorStore(self.stage, self._geometry,
                                       window=self.window, **self._config)
        return VectorSplitStore(self.stage, self._geometry, **self._config)

    def process(self, record: object) -> None:
        if self._sharded:
            self.store.process(record)        # raises with guidance
        if self._mode == "vector":
            raise HardwareError(
                "cannot mix per-record processing with vector-batch "
                "execution (the schedule-driven store needs the whole "
                "stream); build the pipeline with engine=\"row\" for "
                "mixed streaming"
            )
        self._mode = "row"
        if self.predicate(record):
            self.store.process(record)

    def _decide_mode(self, ctx: ArrayContext) -> str:
        if self._sharded:
            self._require_vector(ctx)
            return "vector"
        if self.engine == "row" or self.store.stats.accesses > 0:
            return "row"
        try:
            eval_mask(self.stage.where, ctx)
        except VectorizationError:
            return "row"
        columns = ctx.columns
        if not all(f in columns and columns[f].dtype.kind in "iub"
                   for f in self.stage.key.fields):
            return "row"
        vstore = self._make_vector_store()
        if not all(f in columns for f in vstore.needed_fields):
            return "row"
        self.store = vstore
        return "vector"

    def _require_vector(self, ctx: ArrayContext) -> None:
        """Sharded stages have no row fallback — the conditions
        ``"auto"`` would silently fall back on raise instead."""
        try:
            eval_mask(self.stage.where, ctx)
        except VectorizationError as exc:
            raise HardwareError(
                f"sharded execution needs a vectorizable WHERE for "
                f"stage {self.stage.query_name!r}: {exc}") from exc
        columns = ctx.columns
        bad = [f for f in self.stage.key.fields
               if f not in columns or columns[f].dtype.kind not in "iub"]
        if bad:
            raise HardwareError(
                f"sharded execution needs integer key columns; stage "
                f"{self.stage.query_name!r} is missing {bad[0]!r} (or it "
                f"is non-integer)")
        missing = [f for f in self.store.needed_fields if f not in columns]
        if missing:
            raise HardwareError(
                f"sharded execution is missing fold input column "
                f"{missing[0]!r} for stage {self.stage.query_name!r}")

    def process_batch(self, ctx: ArrayContext, rows: _LazyRowLists) -> None:
        """Chunk path: the WHERE mask and the key columns are extracted
        once per chunk.  Vector mode queues the filtered arrays for the
        schedule-driven store; row mode runs the sequential cache
        machinery per matching packet with pre-built keys."""
        if self._mode is None:
            self._mode = self._decide_mode(ctx)
        if self._mode == "vector":
            mask = eval_mask(self.stage.where, ctx)
            keys = np.column_stack([
                ctx.columns[f].astype(np.int64, copy=False)
                for f in self.stage.key.fields
            ])
            needed = self.store.needed_fields
            if mask is None:
                cols = {f: ctx.columns[f] for f in needed}
            else:
                sel = np.flatnonzero(mask)
                keys = keys[sel]
                cols = {f: ctx.columns[f][sel] for f in needed}
            self.store.add_batch(keys, cols)
            return
        try:
            mask = eval_mask(self.stage.where, ctx)
            key_columns = [
                ctx.columns[f].tolist() for f in self.stage.key.fields
            ]
        except (VectorizationError, KeyError):
            row_lists = rows.materialize()
            for i in range(ctx.n):
                self.process(_ColumnRow(row_lists, i))
            return
        row_lists = rows.materialize()
        indices = range(ctx.n) if mask is None else np.flatnonzero(mask).tolist()
        keys = zip(*key_columns)
        process_keyed = self.store.process_keyed
        if mask is None:
            for i, key in enumerate(keys):
                process_keyed(key, _ColumnRow(row_lists, i))
        else:
            keys = list(keys)
            for i in indices:
                process_keyed(keys[i], _ColumnRow(row_lists, i))


class SwitchPipeline:
    """One switch running one compiled program.

    Args:
        program: Output of :func:`repro.core.compiler.compile_program`.
        params: Bindings for the program's free parameters.
        geometry: Cache geometry for every ``GROUPBY`` stage, or a
            per-query-name mapping.
        policy: Cache eviction policy.
        seed: Hash seed.
        engine: Split-store execution engine for ``GROUPBY`` stages on
            the batch path — ``"vector"`` (schedule-driven
            :class:`~repro.switch.kvstore.vector_store.VectorSplitStore`),
            ``"row"`` (per-packet :class:`SplitKeyValueStore`), or
            ``"auto"`` (vector whenever the stream supports it).  Both
            engines produce bit-identical results.  The one-shot vector
            store defers execution until results are read, so with
            ``"auto"``/``"vector"`` all observables (stats, results,
            writes) are end-of-run values and further streaming after a
            read raises — pass ``window`` (or use ``"row"``) for
            incremental streaming with mid-run reads.
        window: When set, ``GROUPBY`` stages on the vector path use the
            windowed store
            (:class:`~repro.switch.kvstore.windowed_store.WindowedVectorStore`):
            the schedule executes every ``window`` accesses with
            carried state, bounding memory on unbounded streams and
            enabling :meth:`snapshot_results` — results stay
            bit-identical for every window size.
        shards: When set, every ``GROUPBY`` stage fans out to a pool of
            ``shards`` worker processes partitioned by cache set
            (:mod:`repro.switch.kvstore.sharded`), each running the
            single-process engine over its key slice; observables are
            combined via the synthesized merges, bit-identical to the
            unsharded engines.  Stages with a non-mergeable fold route
            their whole stream to one shard (same results, one core).
            Requires the vector path (``engine`` ``"auto"``/
            ``"vector"``, batch ingestion) and no ``refresh_interval``
            (refresh epochs cut at global stream positions, which
            per-shard streams cannot see).
    """

    def __init__(
        self,
        program: SwitchProgram,
        params: Mapping[str, Numeric] | None = None,
        geometry: GeometrySpec = DEFAULT_GEOMETRY,
        policy: str = "lru",
        seed: int = 0,
        refresh_interval: int | None = None,
        engine: str = "auto",
        window: int | None = None,
        shards: int | None = None,
        checkpoint_every: int | None = None,
        faults=None,
    ):
        # Deferred import: the diagnostics table lives in the telemetry
        # layer, which imports this module at package-init time.
        from repro.telemetry.diagnostics import exc_message

        if engine not in ENGINES:
            raise HardwareError(
                exc_message("RPR-E008", engines=ENGINES, engine=engine))
        if window is not None and window <= 0:
            # Checked here (not just in the windowed store) so the row
            # engine — which streams regardless — rejects it too.
            raise HardwareError(exc_message("RPR-E004", window=window))
        if shards is not None:
            if shards < 1:
                raise HardwareError(exc_message("RPR-E005", shards=shards))
            if engine == "row":
                raise HardwareError(exc_message("RPR-E001"))
            if refresh_interval is not None:
                raise HardwareError(exc_message("RPR-E002"))
        self.program = program
        self.params = dict(params or {})
        missing = set(program.params) - set(self.params)
        if missing:
            raise InterpreterError(f"unbound query parameters: {sorted(missing)}")
        self.parser: ParserConfig = configure_parser(program.parse_fields)
        self._selects = [_SelectRunner(s, self.params) for s in program.select_stages]
        self._shard_pool = None
        if shards is not None and program.groupby_stages:
            from .kvstore.sharded import make_store_pool

            specs = [
                (s, self._geometry_for(s.query_name, geometry),
                 dict(params=self.params, policy=policy, seed=seed,
                      refresh_interval=None))
                for s in program.groupby_stages
            ]
            self._shard_pool = make_store_pool(
                specs, window, shards, checkpoint_every=checkpoint_every,
                faults=faults)
        self._groupbys = [
            _GroupByRunner(s, self._geometry_for(s.query_name, geometry),
                           self.params, policy, seed,
                           refresh_interval=refresh_interval, engine=engine,
                           window=window, shard_pool=self._shard_pool,
                           shard_index=i)
            for i, s in enumerate(program.groupby_stages)
        ]
        self.packets_seen = 0

    @staticmethod
    def _geometry_for(name: str, spec: GeometrySpec) -> CacheGeometry:
        if isinstance(spec, CacheGeometry):
            return spec
        if name not in spec:
            raise CompileError(f"no cache geometry supplied for stage {name!r}")
        return spec[name]

    # -- execution -----------------------------------------------------------

    def process(self, record: object) -> None:
        """Run one observation through every stage."""
        self.packets_seen += 1
        for select in self._selects:
            select.process(record)
        for groupby in self._groupbys:
            groupby.process(record)

    def run(self, records: Iterable[object],
            chunk_size: int = DEFAULT_CHUNK_SIZE) -> "SwitchPipeline":
        """Stream ``records`` through every stage.

        A columnar :class:`ObservationTable` takes the chunked batch
        path: per chunk, each stage's WHERE mask and key arrays are
        computed vectorized, and only the split store's sequential
        cache machinery runs per packet.  Any other iterable takes the
        per-record path.  Both paths produce identical results.
        """
        if isinstance(records, ObservationTable) and records.is_columnar:
            return self.run_batch(records, chunk_size=chunk_size)
        process = self.process
        for record in records:
            process(record)
        return self

    def run_batch(self, table: ObservationTable,
                  chunk_size: int = DEFAULT_CHUNK_SIZE) -> "SwitchPipeline":
        """Chunked batch execution over a columnar observation table."""
        columns = table.columns()
        n = len(table)
        # Only the fields the program parses are ever converted to
        # Python lists for the per-packet update functions (§3.1: the
        # programmable parser extracts exactly the configured fields) —
        # and only lazily, when a stage actually runs a per-packet
        # fallback; fully vectorized chunks never pay for the lists.
        fields = tuple(self.program.parse_fields) or tuple(columns)
        for lo in range(0, n, chunk_size):
            hi = min(lo + chunk_size, n)
            chunk = {name: arr[lo:hi] for name, arr in columns.items()}
            rows = _LazyRowLists(chunk, fields)
            ctx = ArrayContext(chunk, self.params, hi - lo)
            for select in self._selects:
                select.process_batch(ctx, rows)
            for groupby in self._groupbys:
                groupby.process_batch(ctx, rows)
            self.packets_seen += hi - lo
        return self

    def finalize(self) -> None:
        for groupby in self._groupbys:
            groupby.store.finalize()
        if self._shard_pool is not None:
            # Every sharded stage has combined its payloads; the
            # workers are no longer needed (idempotent).
            self._shard_pool.close()

    def release(self) -> None:
        """Release the shard workers *without* finalizing the stores —
        the teardown path for broken sessions, where finalizing
        half-ingested state would compute untrustworthy results."""
        if self._shard_pool is not None:
            self._shard_pool.close()

    # -- results ---------------------------------------------------------------

    def results(self, include_invalid: bool = False) -> dict[str, ResultTable]:
        """On-switch stage outputs, keyed by query name.  ``GROUPBY``
        outputs come from the backing store (after a flush)."""
        self.finalize()
        out: dict[str, ResultTable] = {}
        for select in self._selects:
            out[select.stage.query_name] = select.result_table()
        for groupby in self._groupbys:
            out[groupby.stage.query_name] = groupby.store.result_table(
                include_invalid=include_invalid
            )
        return out

    def snapshot_results(self, include_invalid: bool = False) -> tuple[
            dict[str, ResultTable], dict[str, CacheStats],
            dict[str, int], dict[str, float]]:
        """Mid-stream observables — ``(tables, cache stats, backing
        writes, accuracy)`` as if the stream ended now — without
        finalizing; streaming can continue afterwards.

        Requires stores that support incremental reads (the row store
        and the windowed vector store); the one-shot vector store's
        schedule needs the whole stream, so it raises
        :class:`~repro.core.errors.SessionError`.
        """
        tables: dict[str, ResultTable] = {}
        stats: dict[str, CacheStats] = {}
        writes: dict[str, int] = {}
        accuracy: dict[str, float] = {}
        for select in self._selects:
            tables[select.stage.query_name] = ResultTable(
                schema=select.stage.output, rows=list(select.rows))
        for groupby in self._groupbys:
            name = groupby.stage.query_name
            store = groupby.store
            if hasattr(store, "snapshot"):
                # Windowed store or sharded proxy (whose snapshot()
                # itself raises SessionError without a window).
                snap = store.snapshot(include_invalid=include_invalid)
                tables[name] = snap.table
                stats[name] = snap.stats
                writes[name] = snap.backing_writes
                accuracy[name] = snap.accuracy
            elif isinstance(store, SplitKeyValueStore):
                backing = store.snapshot_backing()
                tables[name] = build_result_table(
                    groupby.stage, backing, store._seen, self.params,
                    include_invalid=include_invalid)
                stats[name] = replace(store.stats)
                writes[name] = backing.writes
                accuracy[name] = backing.accuracy
            else:
                from repro.telemetry.diagnostics import exc_message

                raise SessionError(exc_message("RPR-W002"))
        return tables, stats, writes, accuracy

    # -- durable checkpoints -------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Plain-data snapshot of every stage: accumulated select rows,
        each groupby runner's decided mode and store state (collected
        per worker over the shard fabric when sharded)."""
        state = {
            "packets_seen": self.packets_seen,
            "selects": [list(s.rows) for s in self._selects],
            "modes": [g._mode for g in self._groupbys],
            "sharded": self._shard_pool is not None,
        }
        if self._shard_pool is not None:
            state["workers"] = self._shard_pool.checkpoint_workers()
            state["proxy_pos"] = [g.store._pos for g in self._groupbys]
        else:
            state["stores"] = [
                g.store.checkpoint_state() if g._mode is not None else None
                for g in self._groupbys
            ]
        return state

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`checkpoint_state` payload into this (freshly
        constructed) pipeline."""
        if self.packets_seen:
            raise CheckpointError("restore target pipeline must be fresh")
        if (len(state["selects"]) != len(self._selects)
                or len(state["modes"]) != len(self._groupbys)):
            raise CheckpointError(
                "snapshot stage layout does not match the compiled program")
        if state["sharded"] != (self._shard_pool is not None):
            raise CheckpointError(
                "snapshot was taken with a different shards= setting; "
                "resume with the same shard count it was saved with")
        self.packets_seen = state["packets_seen"]
        for select, rows in zip(self._selects, state["selects"]):
            select.rows = list(rows)
        if self._shard_pool is not None:
            self._shard_pool.restore_workers(state["workers"])
            for g, pos, mode in zip(self._groupbys, state["proxy_pos"],
                                    state["modes"]):
                g.store._pos = pos
                g._mode = mode
        else:
            for g, store_state, mode in zip(self._groupbys, state["stores"],
                                            state["modes"]):
                g._mode = mode
                if store_state is None:
                    continue
                if mode == "vector":
                    g.store = g._make_vector_store()
                g.store.restore_state(store_state)

    def cache_stats(self) -> dict[str, CacheStats]:
        return {g.stage.query_name: g.store.stats for g in self._groupbys}

    def backing_writes(self) -> dict[str, int]:
        return {g.stage.query_name: g.store.backing_writes for g in self._groupbys}

    def store_for(self, query_name: str) -> SplitKeyValueStore | VectorSplitStore:
        for groupby in self._groupbys:
            if groupby.stage.query_name == query_name:
                return groupby.store
        raise KeyError(query_name)
