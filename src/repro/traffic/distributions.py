"""Random distributions used by the workload generators.

All samplers take an explicit :class:`numpy.random.Generator` so every
trace is reproducible from a seed.  The generators model the well-known
shape of Internet/datacenter traffic:

* flow sizes are heavy-tailed — most flows are mice, most packets
  belong to elephants (bounded Zipf / discrete Pareto);
* packet sizes are bimodal (small ACK-ish packets and near-MTU data
  packets), parameterised to hit a target mean such as the 850 B
  average of Benson et al. [16];
* inter-arrivals are exponential (Poisson process) within a flow.
"""

from __future__ import annotations

import numpy as np


def bounded_zipf(rng: np.random.Generator, n: int, alpha: float,
                 low: int, high: int) -> np.ndarray:
    """``n`` samples from a Zipf-like power law truncated to
    ``[low, high]`` via inverse-CDF sampling.

    ``alpha`` is the tail exponent (larger ⇒ lighter tail).  Used for
    flow sizes in packets.
    """
    if low < 1 or high < low:
        raise ValueError(f"invalid support [{low}, {high}]")
    support = np.arange(low, high + 1, dtype=np.float64)
    weights = support ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n)
    idx = np.searchsorted(cdf, u)
    return (idx + low).astype(np.int64)


def discrete_pareto(rng: np.random.Generator, n: int, shape: float,
                    scale: float = 1.0, cap: int | None = None) -> np.ndarray:
    """Discrete Pareto (Lomax-style) samples ≥ 1; optionally capped."""
    raw = scale * (rng.pareto(shape, n) + 1.0)
    values = np.maximum(1, np.round(raw)).astype(np.int64)
    if cap is not None:
        np.minimum(values, cap, out=values)
    return values


def bimodal_packet_sizes(rng: np.random.Generator, n: int,
                         small: int = 64, large: int = 1500,
                         mean: float = 850.0) -> np.ndarray:
    """Bimodal packet sizes with a target mean.

    A fraction ``p`` of packets are ``large`` and the rest ``small``,
    with ``p`` chosen so the expectation equals ``mean``.
    """
    if not small <= mean <= large:
        raise ValueError(f"mean {mean} outside [{small}, {large}]")
    p_large = (mean - small) / (large - small)
    is_large = rng.random(n) < p_large
    sizes = np.where(is_large, large, small)
    return sizes.astype(np.int64)


def exponential_gaps(rng: np.random.Generator, n: int, mean_ns: float) -> np.ndarray:
    """``n`` exponential inter-arrival gaps (integer ns, ≥ 1)."""
    gaps = rng.exponential(mean_ns, n)
    return np.maximum(1, np.round(gaps)).astype(np.int64)


def lognormal_durations(rng: np.random.Generator, n: int,
                        median_ns: float, sigma: float = 1.0) -> np.ndarray:
    """Log-normal flow durations (integer ns, ≥ 1)."""
    values = rng.lognormal(mean=np.log(median_ns), sigma=sigma, size=n)
    return np.maximum(1, np.round(values)).astype(np.int64)
