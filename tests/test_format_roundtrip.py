"""Property test: pretty-printing is a faithful inverse of parsing.

Random expression trees over the query grammar are formatted with
``format_expr`` and re-parsed; the results must be identical ASTs.
This pins the precedence/parenthesisation rules that the canonical
sugar-column naming (``SUM(tout - tin)``) depends on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast_nodes import (
    BinOp,
    Call,
    Name,
    Number,
    UnaryOp,
    format_expr,
)
from repro.core.parser import parse_expression

_LEAVES = st.one_of(
    st.integers(min_value=0, max_value=10_000).map(Number),
    st.floats(min_value=0.001, max_value=1000.0,
              allow_nan=False, allow_infinity=False).map(
                  lambda f: Number(round(f, 4))),
    st.sampled_from(["srcip", "tout", "tin", "pkt_len", "qin", "alpha", "L"])
      .map(Name),
)


def _exprs(depth):
    if depth <= 0:
        return _LEAVES
    sub = _exprs(depth - 1)
    return st.one_of(
        _LEAVES,
        st.tuples(st.sampled_from(["+", "-", "*", "/"]), sub, sub).map(
            lambda t: BinOp(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
                  sub, sub).map(lambda t: BinOp(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(["and", "or"]),
                  st.tuples(st.sampled_from(["==", "<"]), sub, sub).map(
                      lambda t: BinOp(t[0], t[1], t[2])),
                  st.tuples(st.sampled_from(["!=", ">"]), sub, sub).map(
                      lambda t: BinOp(t[0], t[1], t[2]))).map(
            lambda t: BinOp(t[0], t[1], t[2])),
        sub.map(lambda e: UnaryOp("-", e)),
        st.tuples(st.sampled_from(["max", "min"]), sub, sub).map(
            lambda t: Call(t[0], (t[1], t[2]))),
        sub.map(lambda e: Call("abs", (e,))),
    )


@settings(max_examples=300, deadline=None)
@given(expr=_exprs(3))
def test_format_parse_roundtrip(expr):
    printed = format_expr(expr)
    reparsed = parse_expression(printed)
    assert reparsed == expr, printed


@settings(max_examples=100, deadline=None)
@given(expr=_exprs(2))
def test_format_is_deterministic(expr):
    assert format_expr(expr) == format_expr(expr)
