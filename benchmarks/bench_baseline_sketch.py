"""B-1 — sketch baseline at equal SRAM (§5's positioning claim).

The paper: "our hardware design scales to a large number of keys,
sidestepping the accuracy-memory tradeoff of sketches for the broad
class of queries that are linear-in-state."

This bench makes the claim quantitative for the §4 workload
(``SELECT COUNT GROUPBY 5tuple``, CAIDA-like trace): at each SRAM
budget, compare

* a Count-Min sketch (conservative update, depth 4) spending the whole
  budget on counters — on-chip only, *approximate*, errors grow as
  memory shrinks;
* the split key-value store spending the budget on the cache — answers
  *exact* in the backing store, the cost appearing instead as the
  eviction (write) stream the backing store must absorb.

Expected shape: the sketch's mean/95p relative error explodes at small
budgets while the split design's answers stay exact and only its
eviction rate rises — the two designs pay on different axes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_percent, format_table
from repro.switch.area import evictions_per_second
from repro.switch.kvstore.cache import CacheGeometry, simulate_eviction_count
from repro.switch.kvstore.sketch import SketchGeometry, run_count_query
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

SCALE = 1.0 / 512.0
PAIR_BITS = 128
#: SRAM budgets at paper scale (pairs): 2^16..2^20 = 8..128 Mbit.
BUDGET_PAIRS = tuple(1 << e for e in range(16, 21))


@pytest.fixture(scope="module")
def workload():
    # The sketch walks Python ints; the cache simulator gets the array.
    key_array = generate_key_stream(CaidaTraceConfig(scale=SCALE))
    keys = key_array.tolist()
    truth: dict[int, int] = {}
    for key in keys:
        truth[key] = truth.get(key, 0) + 1
    return keys, key_array, truth


@pytest.fixture(scope="module")
def comparison(report, workload):
    keys, key_array, truth = workload
    rows = []
    data: dict[int, dict[str, float]] = {}
    for paper_pairs in BUDGET_PAIRS:
        budget_bits = int(paper_pairs * SCALE) * PAIR_BITS
        mbit_label = paper_pairs * PAIR_BITS / (1 << 20)

        sketch = run_count_query(
            keys, SketchGeometry.for_bits(budget_bits, depth=4),
            conservative=True)
        errors = np.array(sketch.relative_errors(truth))

        capacity = max(8, int(paper_pairs * SCALE) // 8 * 8)
        stats = simulate_eviction_count(
            key_array, CacheGeometry.set_associative(capacity, ways=8))

        data[paper_pairs] = {
            "sketch_mean_err": float(errors.mean()),
            "sketch_p95_err": float(np.percentile(errors, 95)),
            "split_eviction": stats.eviction_fraction,
        }
        rows.append([
            f"{mbit_label:.0f}",
            format_percent(float(errors.mean())),
            format_percent(float(np.percentile(errors, 95))),
            "0% (exact)",
            format_percent(stats.eviction_fraction),
            f"{evictions_per_second(stats.eviction_fraction) / 1e3:,.0f}K",
        ])
    text = format_table(
        ["Mbit", "sketch mean err", "sketch p95 err",
         "split-store err", "split evict%", "split writes/s"],
        rows,
        title=f"B-1 — Count-Min sketch vs split key-value store at equal "
              f"SRAM (COUNT by 5-tuple, {len(keys)} pkts, "
              f"{len(truth)} flows, scale {SCALE:.4g})",
    )
    report("B-1: sketch baseline at equal memory", text)
    return data


def test_split_store_exact_at_every_budget(workload):
    """The split design's backing store is exact by construction for
    COUNT (verified end-to-end elsewhere); here we assert the sketch is
    NOT exact at the small budgets where the paper's claim bites."""
    keys, _key_array, truth = workload
    budget_bits = int((1 << 16) * SCALE) * PAIR_BITS
    sketch = run_count_query(keys, SketchGeometry.for_bits(budget_bits, depth=4),
                             conservative=True)
    errors = sketch.relative_errors(truth)
    assert max(errors) > 0.05


def test_sketch_error_grows_as_memory_shrinks(comparison):
    errs = [comparison[p]["sketch_mean_err"] for p in BUDGET_PAIRS]
    assert errs[0] > errs[-1]
    assert errs[0] > 2 * errs[-1]


def test_split_cost_is_evictions_not_accuracy(comparison):
    for paper_pairs in BUDGET_PAIRS:
        point = comparison[paper_pairs]
        assert 0 <= point["split_eviction"] < 0.5


def test_sketch_throughput(benchmark, workload, comparison):
    keys, _key_array, _ = workload
    subset = keys[:200_000]
    geometry = SketchGeometry.for_bits(int((1 << 18) * SCALE) * PAIR_BITS,
                                       depth=4)

    def run():
        return run_count_query(subset, geometry, conservative=True)

    sketch = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sketch.total == len(subset)
