"""Query compiler: resolved programs → switch configurations.

The paper stops short of building this ("We have not yet built such a
compiler", §1) but specifies the mapping it would implement (§3.1-3.2):

* ``SELECT ... WHERE`` → programmable parser + match-action stages;
* ``GROUPBY`` → the programmable key-value store, with the aggregation
  fields as key and the fold state as value;
* restricted ``JOIN`` → the two input ``GROUPBY`` stages on-switch plus
  a read-time relational join in the collection software;
* composed queries → the base-table stage on-switch, downstream stages
  over its (keyed) results in software.

The compiler also runs the linear-in-state analysis per fold, attaches
the synthesised merge function, lays out key/value bit widths (§4 uses
a 104-bit 5-tuple key and a 24-bit counter), and accounts ALU work for
the feasibility discussion of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from . import schema as sch
from .ast_nodes import BinOp, Call, Cond, Expr, Number, UnaryOp, walk
from .errors import CompileError
from .linearity import LinearityResult, analyze_fold
from .merge_synthesis import synthesize_merge
from .plan import (
    AluProgram,
    FoldConfig,
    GroupByStage,
    KeyLayout,
    SelectStage,
    SoftwareStage,
    SwitchProgram,
    ValueLayout,
    ValueSlot,
)
from .semantics import FoldInstance, ResolvedProgram, ResolvedQuery

#: Default bit width of one state register; §4 assumes 24-bit counters,
#: which :func:`_state_bits` applies to pure-counting folds.
DEFAULT_STATE_BITS = 32
COUNTER_BITS = 24

#: Bit width modelled for an auxiliary merge register (the running
#: product ``P`` is a fixed-point multiplier in hardware).
AUX_REGISTER_BITS = 32


@dataclass(frozen=True)
class CompileOptions:
    """Compiler knobs.

    Attributes:
        exact_history: Enable the exact-history merge extension for
            linear folds whose coefficients read history variables
            (see :mod:`repro.core.merge_synthesis`).
        state_bits_override: Per-(fold-column, state-var) width
            overrides, e.g. ``{("COUNT", "COUNT"): 24}``.
        alu_op_budget: Combinational ops available per pipeline stage;
            exceeded budgets are reported in :attr:`AluProgram.op_count`
            diagnostics but only enforced when ``strict_alu`` is set.
        strict_alu: Raise :class:`CompileError` when a fold exceeds the
            ALU budget.
    """

    exact_history: bool = False
    state_bits_override: Mapping[tuple[str, str], int] | None = None
    alu_op_budget: int = 16
    strict_alu: bool = False


def compile_program(program: ResolvedProgram,
                    options: CompileOptions | None = None) -> SwitchProgram:
    """Compile a resolved program into a :class:`SwitchProgram`."""
    options = options or CompileOptions()
    select_stages: list[SelectStage] = []
    groupby_stages: list[GroupByStage] = []
    software_stages: list[SoftwareStage] = []
    on_switch: set[str] = set()

    for query in program.queries:
        if query.kind == "join":
            software_stages.append(SoftwareStage(
                query=query,
                reason="restricted JOIN reduces to on-switch GROUPBYs plus a "
                       "read-time join (§2)",
            ))
            continue
        if query.source is not None:
            software_stages.append(SoftwareStage(
                query=query,
                reason=f"input {query.source!r} is a keyed result table, read "
                       "from the backing store",
            ))
            continue
        if query.kind == "groupby":
            groupby_stages.append(_compile_groupby(query, options))
        else:
            select_stages.append(_compile_select(query))
        on_switch.add(query.name)

    parse_fields = _collect_parse_fields(program, on_switch)
    return SwitchProgram(
        parse_fields=parse_fields,
        select_stages=tuple(select_stages),
        groupby_stages=tuple(groupby_stages),
        software_stages=tuple(software_stages),
        result=program.result,
        params=program.params,
    )


# ---------------------------------------------------------------------------
# Stage compilation
# ---------------------------------------------------------------------------


def _compile_select(query: ResolvedQuery) -> SelectStage:
    columns = tuple(c for c in query.output.columns if c.expr is not None)
    return SelectStage(
        query_name=query.name,
        where=query.where,
        columns=columns,
        output=query.output,
    )


def _compile_groupby(query: ResolvedQuery, options: CompileOptions) -> GroupByStage:
    key = KeyLayout(fields=query.groupby_keys, bits=sch.key_bits(query.groupby_keys))

    fold_configs: list[FoldConfig] = []
    slots: list[ValueSlot] = []
    for instance in query.folds:
        linearity = analyze_fold(instance)
        merge = synthesize_merge(linearity, exact_history=options.exact_history)
        alu = _build_alu(linearity, options, instance.column)
        state_bits = {
            var: _state_bits(instance, var, linearity, options)
            for var in instance.state_vars
        }
        fold_configs.append(FoldConfig(
            column=instance.column,
            instance=instance,
            linearity=linearity,
            merge=merge,
            alu=alu,
            state_bits=state_bits,
        ))
        for var in instance.state_vars:
            slots.append(ValueSlot(name=f"{instance.column}/{var}",
                                   bits=state_bits[var], kind="state"))
        for i in range(merge.aux_registers()):
            slots.append(ValueSlot(name=f"{instance.column}/aux{i}",
                                   bits=AUX_REGISTER_BITS, kind="aux"))

    return GroupByStage(
        query_name=query.name,
        key=key,
        folds=tuple(fold_configs),
        value=ValueLayout(slots=tuple(slots)),
        where=query.where,
        output=query.output,
    )


def _build_alu(linearity: LinearityResult, options: CompileOptions,
               column: str) -> AluProgram:
    op_count = sum(_count_ops(e) for e in linearity.update_exprs.values())
    depth = max((_expr_depth(e) for e in linearity.update_exprs.values()), default=0)
    if options.strict_alu and op_count > options.alu_op_budget:
        raise CompileError(
            f"fold {column!r} needs {op_count} ALU ops per packet, exceeding "
            f"the per-stage budget of {options.alu_op_budget} (§3.3)"
        )
    return AluProgram(update_exprs=dict(linearity.update_exprs),
                      op_count=op_count, depth=depth)


def _count_ops(expr: Expr) -> int:
    count = 0
    for node in walk(expr):
        if isinstance(node, (BinOp, UnaryOp, Call, Cond)):
            count += 1
    return count


def _expr_depth(expr: Expr) -> int:
    children = expr.children()
    if not children:
        return 0
    return 1 + max(_expr_depth(c) for c in children)


def _state_bits(instance: FoldInstance, var: str, linearity: LinearityResult,
                options: CompileOptions) -> int:
    """Bit width of one state register.

    Pure counters — identity-matrix variables whose offset is a
    constant increment — get the paper's 24-bit width; everything else
    gets 32 bits.  Both can be overridden per variable.
    """
    override = (options.state_bits_override or {}).get((instance.column, var))
    if override is not None:
        return override
    if linearity.linear and var in linearity.order:
        coeff = linearity.matrix.get((var, var))
        offset = linearity.offset.get(var, Number(0))
        off_diagonal = any(i == var and j != var for (i, j) in linearity.matrix)
        if coeff == Number(1) and not off_diagonal and isinstance(offset, Number):
            return COUNTER_BITS
    return DEFAULT_STATE_BITS


# ---------------------------------------------------------------------------
# Parser configuration (§3.1)
# ---------------------------------------------------------------------------


def _collect_parse_fields(program: ResolvedProgram, on_switch: set[str]) -> tuple[str, ...]:
    """Every base-table field an on-switch stage touches."""
    from .ast_nodes import FieldRef

    names: list[str] = []

    def visit(expr: Expr | None) -> None:
        if expr is None:
            return
        for node in walk(expr):
            if isinstance(node, FieldRef) and node.name not in names:
                names.append(node.name)

    for query in program.queries:
        if query.name not in on_switch:
            continue
        visit(query.where)
        for key_field in query.groupby_keys:
            if key_field not in names:
                names.append(key_field)
        for fold in query.folds:
            result = analyze_fold(fold)
            for expr in result.update_exprs.values():
                visit(expr)
        for col in query.output.columns:
            visit(col.expr)
    return tuple(names)
