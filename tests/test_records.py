"""Observation-record and table tests: conversion, persistence, keys."""

import math

import numpy as np
import pytest

from repro.network.records import ObservationTable

from tests.conftest import make_record, synthetic_trace


class TestPacketRecord:
    def test_dropped_property(self):
        assert make_record(tout=math.inf).dropped
        assert not make_record(tout=5.0).dropped

    def test_queueing_delay(self):
        assert make_record(tin=10, tout=35.0).queueing_delay == 25.0
        assert math.isinf(make_record(tout=math.inf).queueing_delay)

    def test_five_tuple(self):
        record = make_record(srcip=1, dstip=2, srcport=3, dstport=4, proto=6)
        assert record.five_tuple() == (1, 2, 3, 4, 6)

    def test_key_extraction(self):
        record = make_record(qid=7, srcip=1)
        assert record.key(("qid", "srcip")) == (7, 1)


class TestColumnarConversion:
    def test_round_trip(self):
        table = synthetic_trace(n_packets=200, n_flows=10)
        arrays = table.to_arrays()
        rebuilt = ObservationTable.from_arrays(arrays)
        assert len(rebuilt) == len(table)
        assert rebuilt[0] == table[0]
        assert rebuilt[-1] == table[-1]

    def test_inf_tout_survives(self):
        table = ObservationTable([make_record(tout=math.inf)])
        rebuilt = ObservationTable.from_arrays(table.to_arrays())
        assert math.isinf(rebuilt[0].tout)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ObservationTable.from_arrays({
                "srcip": np.zeros(3, dtype=np.int64),
                "dstip": np.zeros(4, dtype=np.int64),
            })

    def test_partial_columns_default(self):
        rebuilt = ObservationTable.from_arrays(
            {"srcip": np.array([5], dtype=np.int64)})
        assert rebuilt[0].srcip == 5
        assert rebuilt[0].proto == 6  # default


class TestPersistence:
    def test_npz_round_trip(self, tmp_path):
        table = synthetic_trace(n_packets=300, n_flows=12)
        path = str(tmp_path / "trace.npz")
        table.save(path)
        loaded = ObservationTable.load(path)
        assert len(loaded) == len(table)
        assert loaded[42] == table[42]


class TestAggregates:
    def test_unique_keys(self):
        table = synthetic_trace(n_packets=500, n_flows=20)
        assert table.unique_keys(("srcip",)) <= 20

    def test_drop_count(self):
        table = ObservationTable([
            make_record(tout=math.inf), make_record(tout=1.0),
            make_record(tout=math.inf),
        ])
        assert table.drop_count() == 2

    def test_duration(self):
        table = ObservationTable([make_record(tin=100), make_record(tin=900)])
        assert table.duration_ns() == 800

    def test_duration_out_of_order(self):
        """Merged multi-queue traces may not end on the latest tin; the
        duration is the tin span, never negative."""
        table = ObservationTable([
            make_record(tin=500), make_record(tin=900), make_record(tin=100),
        ])
        assert table.duration_ns() == 800

    def test_key_array_distinct_flows(self):
        table = synthetic_trace(n_packets=400, n_flows=15)
        keys = table.key_array(("srcip", "dstip"))
        assert len(keys) == 400
        expected = table.unique_keys(("srcip", "dstip"))
        assert len(np.unique(keys)) == expected


class TestColumnarAuthority:
    """The struct-of-arrays core: columnar tables behave identically to
    row tables, and switch authority safely on mutation."""

    def make_columnar(self, **kwargs) -> ObservationTable:
        table = synthetic_trace(**kwargs)
        columnar = ObservationTable.from_arrays(table.to_arrays())
        assert columnar.is_columnar
        return columnar

    def test_row_table_is_not_columnar(self):
        assert not synthetic_trace(n_packets=10).is_columnar

    def test_iteration_yields_equal_records(self):
        table = synthetic_trace(n_packets=150, n_flows=8)
        columnar = ObservationTable.from_arrays(table.to_arrays())
        assert list(columnar) == list(table)
        assert columnar.is_columnar          # iteration keeps authority

    def test_getitem_negative_and_bounds(self):
        columnar = self.make_columnar(n_packets=50)
        assert columnar[-1] == columnar[49]
        with pytest.raises(IndexError):
            columnar[50]

    def test_records_access_switches_to_rows(self):
        columnar = self.make_columnar(n_packets=30)
        records = columnar.records
        assert not columnar.is_columnar
        records[0].tout = math.inf           # mutations stick
        assert columnar.drop_count() >= 1

    def test_append_on_columnar_table(self):
        from tests.conftest import make_record
        columnar = self.make_columnar(n_packets=5)
        columnar.append(make_record(srcip=42))
        assert len(columnar) == 6
        assert columnar[5].srcip == 42

    def test_columnar_aggregates_match_row_path(self):
        table = synthetic_trace(n_packets=600, n_flows=25, seed=9)
        columnar = ObservationTable.from_arrays(table.to_arrays())
        fields = ("srcip", "dstip", "srcport")
        assert columnar.drop_count() == table.drop_count()
        assert columnar.duration_ns() == table.duration_ns()
        assert columnar.unique_keys(fields) == table.unique_keys(fields)
        assert np.array_equal(columnar.key_array(fields), table.key_array(fields))

    def test_columns_returns_canonical_storage(self):
        columnar = self.make_columnar(n_packets=20)
        assert columnar.columns() is columnar.columns()
        copied = columnar.to_arrays()
        copied["srcip"][0] = -1              # copies never alias storage
        assert columnar.columns()["srcip"][0] != -1

    def test_from_arrays_casts_dtypes(self):
        table = ObservationTable.from_arrays({
            "srcip": np.array([1, 2], dtype=np.int32),
            "tout": np.array([5, math.inf]),
        })
        assert table.columns()["srcip"].dtype == np.int64
        assert table.columns()["tout"].dtype == np.float64
        assert table[1].dropped
