"""Reusable multi-process worker pool for sharded session execution.

The Fig. 5/6 sweeps (:mod:`repro.analysis.sweep_exec`) already fan
independent cells across processes over one ``multiprocessing.shared_memory``
segment.  This module generalises that plumbing into a long-lived pool
that sharded *sessions* can stream through:

* **Batch framing.** :meth:`ShardWorkerPool.post` ships a dict of numpy
  arrays to one worker by packing them into a single shared-memory
  segment (one copy in, one copy out — no pickling of the bulk data);
  scalar metadata rides the control pipe.  Each segment lives until the
  worker acknowledges the copy-out, then the parent unlinks it, so the
  ``/dev/shm`` footprint is bounded by :data:`MAX_PENDING` segments per
  worker regardless of stream length.
* **Worker lifecycle.** Workers are forked (role objects are inherited
  by memory, never pickled — compiled programs and closures ship for
  free), run a recv/handle loop, and stop on a sentinel;
  :meth:`ShardWorkerPool.close` joins them with a terminate fallback
  and a ``weakref.finalize`` backstop for abandoned pools, releasing
  any still-pending segments either way.  Live pools are additionally
  registered for ``atexit``/SIGTERM teardown, so a killed parent drains
  in-flight batches and unlinks its ``/dev/shm`` segments instead of
  leaving strays behind.
* **Crash propagation and recovery.** A worker exception travels back
  as a formatted traceback and re-raises in the parent as
  :class:`ShardError` — handler failures are deterministic and are
  never retried.  A *dead* worker (EOF/broken pipe/killed process) is
  different: when the pool was built with ``checkpoint_every``, the
  parent keeps each role's pristine pre-fork copy, takes a synchronous
  role checkpoint every ``checkpoint_every`` journaled posts (the FIFO
  pipe guarantees the checkpoint reflects every prior post), and
  journals the posts since.  On worker death it respawns the worker
  from the pristine role, restores the last checkpoint, and replays
  only the journaled batches — with exponential backoff and a bounded
  restart budget per worker; exhausting the budget raises a terminal
  :class:`ShardError` that says so.  Without ``checkpoint_every`` a
  dead worker is terminal immediately (the previous behaviour).
* **Fault injection.** A :class:`~repro.telemetry.faults.FaultInjector`
  passed as ``faults`` is consulted before every public send (it may
  kill the target worker first) and on every ack (it may drop or
  duplicate the release) — a deterministic, seeded way to exercise the
  recovery machinery in tests and ``benchmarks/bench_durability.py``.

The pool is transport only — all sharding semantics (key partitioning,
merge combining) live with the roles, see
:mod:`repro.switch.kvstore.sharded` and
:class:`repro.telemetry.deploy.NetworkSession`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
import signal
import sys
import threading
import time
import traceback
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.errors import CheckpointError, HardwareError

#: Cap on unacknowledged in-flight batches per worker: bounds both the
#: transient /dev/shm footprint (a segment lives until its worker
#: copies it out) and how far the parent can run ahead of a slow shard.
MAX_PENDING = 8

#: Default restart budget per worker when crash recovery is enabled.
DEFAULT_MAX_RESTARTS = 3

#: Base of the exponential restart backoff (seconds): restart ``k``
#: sleeps ``U(0, backoff * 2**(k-1))`` — *full jitter*, so workers
#: restarting off the same failure don't synchronize into a storm.
DEFAULT_RESTART_BACKOFF = 0.05


class ShardError(HardwareError):
    """A shard worker failed: raised in its handler, died beyond
    recovery, or the pool was asked to operate after such a failure
    poisoned it."""


class _WorkerDied(Exception):
    """Internal: the worker's pipe broke during a non-journaled
    (direct) interaction — checkpoint, restore, or replay.  Carries the
    reason; callers decide whether another restart attempt remains."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def release_shared_memory(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one shared-memory segment, tolerating partial
    or repeated teardown: a ``close()`` failure (e.g. a live buffer
    export) must not leak the ``/dev/shm`` segment, and releasing twice
    is a no-op.  Shared by this pool and the sweep pool's ``_fan``."""
    try:
        shm.close()
    except BufferError:
        # A numpy view still references the buffer; the mapping stays
        # until the view dies, but the segment must still be unlinked.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _pack_frames(arrays: Mapping[str, np.ndarray] | None) -> tuple[
        shared_memory.SharedMemory | None, tuple]:
    """Pack named arrays into one fresh segment; returns the segment
    (``None`` when there is nothing to ship) and the per-array specs
    ``(name, offset, dtype, shape)`` the receiver rebuilds from."""
    if not arrays:
        return None, ()
    packed = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        if arr.dtype.hasobject:
            raise ShardError(
                f"cannot ship object-dtype column {name!r} through "
                f"shared memory")
        packed.append((name, offset, arr))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    try:
        specs = []
        for name, off, arr in packed:
            if arr.nbytes:
                view = np.ndarray(arr.shape, dtype=arr.dtype,
                                  buffer=shm.buf, offset=off)
                view[...] = arr
                del view   # drop the buffer export before any close()
            specs.append((name, off, arr.dtype.str, arr.shape))
        return shm, tuple(specs)
    except BaseException:
        # the segment has no owner until it lands in w.pending; a
        # failed view write must not leak it in /dev/shm
        release_shared_memory(shm)
        raise


def _unpack_frames(shm_name: str | None,
                   specs: tuple) -> dict[str, np.ndarray]:
    """Copy the framed arrays out of the named segment (receiver side);
    the segment is closed before returning — the parent unlinks it on
    the acknowledgement this copy-out enables."""
    if shm_name is None:
        return {}
    # Attaching registers the segment a second time — but the pool
    # starts the resource tracker *before* forking, so every worker
    # shares the parent's tracker and the re-register is an idempotent
    # set-add; the parent's unlink performs the single unregister.
    # (Unregistering here instead would strip the parent's entry and
    # make that unlink trip the tracker's bookkeeping.)
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        out = {}
        for name, offset, dtype, shape in specs:
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=shm.buf, offset=offset)
            out[name] = view.copy()
            del view
    finally:
        try:
            shm.close()
        except BufferError:      # pragma: no cover - views are deleted
            pass
    return out


def _worker_main(role, conn) -> None:
    """Worker loop: receive, ack the segment, dispatch to the role.

    ``__checkpoint__``/``__restore__`` are pool-internal ops served by
    the role's ``checkpoint()``/``restore(state)`` methods — the basis
    of both composite session checkpoints and crash recovery."""
    try:
        # The parent's SIGTERM drain handler must not run in workers
        # (they hold the parent's pool registry from the fork).
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):        # pragma: no cover - non-main thread
        pass
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            if msg[0] == "stop":
                return
            _, token, op, meta, reply, shm_name, specs = msg
            try:
                arrays = _unpack_frames(shm_name, specs)
            except Exception:
                conn.send(("error", token, traceback.format_exc()))
                continue
            conn.send(("ack", token))
            try:
                if op == "__checkpoint__":
                    result = role.checkpoint()
                elif op == "__restore__":
                    result = role.restore(meta)
                else:
                    result = role.handle(op, meta, arrays)
            except Exception:
                conn.send(("error", token, traceback.format_exc()))
                continue
            if reply:
                conn.send(("result", token, result))
    except (BrokenPipeError, OSError):   # parent went away mid-send
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    __slots__ = ("proc", "conn", "index", "pending", "results", "failed",
                 "journal", "since_ckpt", "last_ckpt", "restarts",
                 "awaiting")

    def __init__(self, proc, conn, index: int):
        self.proc = proc
        self.conn = conn
        self.index = index
        #: token -> SharedMemory segments awaiting the worker's ack.
        self.pending: dict[int, shared_memory.SharedMemory] = {}
        #: token -> payload for completed calls not yet collected.
        self.results: dict[int, Any] = {}
        self.failed: str | None = None
        #: Journaled (token, op, meta, arrays, reply) since the last
        #: role checkpoint — the replay set after a crash.  Only kept
        #: when recovery is enabled, and bounded by checkpoint_every.
        self.journal: list[tuple] = []
        self.since_ckpt = 0
        #: Last role checkpoint payload (None until the first one).
        self.last_ckpt: Any = None
        self.restarts = 0
        #: Reply tokens not yet received — the set a replay re-requests.
        self.awaiting: set[int] = set()


#: Pools whose workers/segments must be torn down at interpreter exit
#: or on SIGTERM (the weakref backstop only fires on GC, which a killed
#: parent never reaches).
_LIVE_POOLS: "weakref.WeakSet[ShardWorkerPool]" = weakref.WeakSet()
_EXIT_HOOKS_INSTALLED = False


def _close_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception as exc:         # pragma: no cover - best effort
            # teardown must still visit every remaining pool, but a
            # failed close (undrained worker, leaked segment) is what
            # the operator needs to hear about at exit
            sys.stderr.write(
                f"repro: shard pool teardown failed: {exc!r}\n")


def _sigterm_handler(signum, frame):     # pragma: no cover - exercised
    _close_live_pools()                  # in a subprocess test
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _install_exit_hooks() -> None:
    """Once per process: atexit teardown always; a SIGTERM handler only
    when none is installed (we chain to the default after draining, and
    never stomp a user handler)."""
    global _EXIT_HOOKS_INSTALLED
    if _EXIT_HOOKS_INSTALLED:
        return
    _EXIT_HOOKS_INSTALLED = True
    atexit.register(_close_live_pools)
    if threading.current_thread() is threading.main_thread():
        try:
            if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
                signal.signal(signal.SIGTERM, _sigterm_handler)
        except (ValueError, OSError):    # pragma: no cover - non-main
            pass


def _shutdown(workers: list[_Worker], drain_timeout: float = 1.0) -> None:
    """Stop every worker, *drain* in-flight acks (so segments are
    released by handshake, not force-unlinked mid-copy), then release
    whatever is left; used by :meth:`ShardWorkerPool.close`, the GC
    backstop, and the atexit/SIGTERM hooks."""
    for w in workers:
        try:
            w.conn.send(("stop",))
        except (OSError, ValueError):
            pass
    deadline = time.monotonic() + drain_timeout
    for w in workers:
        # The worker acks each queued batch before it sees the stop
        # sentinel (FIFO), so waiting here lets it finish copying out.
        while w.pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                if not w.conn.poll(min(remaining, 0.05)):
                    continue
                msg = w.conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "ack":
                shm = w.pending.pop(msg[1], None)
                if shm is not None:
                    release_shared_memory(shm)
            # results/errors arriving during shutdown are dropped
    for w in workers:
        try:
            w.conn.close()
        except OSError:
            pass
        for shm in w.pending.values():
            release_shared_memory(shm)
        w.pending.clear()
    for w in workers:
        w.proc.join(timeout=5.0)
        if w.proc.is_alive():          # pragma: no cover - stuck worker
            w.proc.terminate()
            w.proc.join(timeout=1.0)


class ShardWorkerPool:
    """One forked worker process per role, with shared-memory batch
    shipping, bounded run-ahead, and crash propagation.

    ``post`` is fire-and-forget (ordering per worker is the pipe's
    FIFO, so a later ``call`` observes every earlier post — what makes
    mid-stream snapshots consistent); ``submit``/``result`` split a
    call so finalization can run on all shards concurrently
    (:meth:`call_all`).

    Args:
        roles: One role object per worker (forked, never pickled).
        name: Process-name prefix.
        checkpoint_every: When set, enables crash *recovery*: every
            ``checkpoint_every`` journaled posts per worker the pool
            takes a synchronous role checkpoint, and a worker that dies
            is respawned from its pristine role, restored from the last
            checkpoint, and fed only the journaled batches since.
            Roles must implement ``checkpoint()``/``restore(state)``.
        max_restarts: Per-worker restart budget before a dead worker
            becomes a terminal :class:`ShardError`.
        restart_backoff: Cap base of the jittered exponential backoff
            slept before each restart attempt: restart ``k`` sleeps
            ``U(0, restart_backoff * 2**(k-1))``.
        restart_jitter: Seed for the backoff jitter RNG (reproducible
            restart timing in tests); ``None`` seeds from the OS.
        ack_timeout: Seconds a synchronous wait on a worker reply may
            block before the pool gives up on the worker.  A crashed
            worker breaks its pipe and is detected immediately, but a
            *wedged-but-alive* worker (deadlocked handler, stuck
            syscall) would otherwise hang the parent forever; the
            timeout turns it into a :class:`ShardError` naming the
            worker.  ``None`` (the default) waits indefinitely.
        faults: Optional
            :class:`~repro.telemetry.faults.FaultInjector` consulted on
            public sends and acks (deterministic fault injection).
    """

    def __init__(self, roles: Sequence[object], name: str = "shard",
                 checkpoint_every: int | None = None,
                 max_restarts: int = DEFAULT_MAX_RESTARTS,
                 restart_backoff: float = DEFAULT_RESTART_BACKOFF,
                 restart_jitter: int | None = None,
                 ack_timeout: float | None = None,
                 faults=None):
        if not roles:
            raise ShardError("worker pool needs at least one role")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ShardError(
                f"checkpoint_every must be a positive post count, got "
                f"{checkpoint_every!r}")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:             # pragma: no cover - non-POSIX
            raise ShardError(
                "sharded execution requires the fork start method "
                "(POSIX); this platform does not provide it") from None
        self._recovery = checkpoint_every is not None
        if self._recovery:
            for i, role in enumerate(roles):
                if not (hasattr(role, "checkpoint")
                        and hasattr(role, "restore")):
                    raise ShardError(
                        f"crash recovery (checkpoint_every=) needs roles "
                        f"with checkpoint()/restore(); role {i} "
                        f"({type(role).__name__}) has neither")
        self._ctx = ctx
        self._name = name
        #: Pristine pre-fork role copies — the respawn template.  The
        #: parent never mutates them; each worker mutates its own
        #: forked copy.
        self._roles = list(roles)
        self._checkpoint_every = checkpoint_every
        self._max_restarts = max_restarts
        self._restart_backoff = restart_backoff
        self._restart_rng = random.Random(restart_jitter)
        if ack_timeout is not None and ack_timeout <= 0:
            raise ShardError(
                f"ack_timeout must be a positive number of seconds "
                f"(or None to wait forever), got {ack_timeout!r}")
        self._ack_timeout = ack_timeout
        self._faults = faults
        self._workers: list[_Worker] = []
        self._token = 0
        self._closed = False
        # Start the shared-memory resource tracker *before* forking so
        # every worker (including later respawns) inherits it: attach-
        # time registrations in workers then collapse into the parent's
        # own entries instead of fighting a per-child tracker.
        resource_tracker.ensure_running()
        for i in range(len(roles)):
            proc, conn = self._spawn(i)
            self._workers.append(_Worker(proc, conn, i))
        self._finalizer = weakref.finalize(
            self, _shutdown, list(self._workers))
        _install_exit_hooks()
        _LIVE_POOLS.add(self)

    def _spawn(self, index: int):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(self._roles[index], child_conn),
            name=f"{self._name}-{index}", daemon=True)
        proc.start()
        child_conn.close()
        return proc, parent_conn

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- sending -------------------------------------------------------------

    def post(self, worker: int, op: str, meta: Any = None,
             arrays: Mapping[str, np.ndarray] | None = None) -> None:
        """Fire-and-forget: ship ``arrays``/``meta`` to one worker.  A
        handler failure surfaces as :class:`ShardError` on a later
        interaction with that worker."""
        self._send(worker, op, meta, arrays, reply=False)

    def submit(self, worker: int, op: str, meta: Any = None,
               arrays: Mapping[str, np.ndarray] | None = None,
               ) -> tuple[int, int]:
        """Start a call; pass the returned handle to :meth:`result`."""
        return self._send(worker, op, meta, arrays, reply=True)

    def call(self, worker: int, op: str, meta: Any = None,
             arrays: Mapping[str, np.ndarray] | None = None) -> Any:
        """Synchronous round trip to one worker."""
        return self.result(self.submit(worker, op, meta, arrays))

    def call_all(self, op: str, meta: Any = None) -> list[Any]:
        """Run ``op`` on every worker *concurrently* (all requests are
        in flight before the first result is awaited) and return the
        payloads in worker order."""
        handles = [self.submit(i, op, meta)
                   for i in range(len(self._workers))]
        return [self.result(h) for h in handles]

    def result(self, handle: tuple[int, int]) -> Any:
        """Collect one submitted call's payload (blocking).  If the
        worker dies while we wait and recovery is enabled, the replay
        re-requests the reply and this call keeps waiting for it."""
        index, token = handle
        w = self._workers[index]
        self._check(w)
        while token not in w.results:
            msg = self._recv(w)
            if msg is not None:
                self._handle_msg(w, msg)
        w.awaiting.discard(token)
        return w.results.pop(token)

    # -- durable checkpoints / recovery ---------------------------------------

    def checkpoint_workers(self) -> list[Any]:
        """Synchronously checkpoint every role and return the states in
        worker order.  Doubles as a recovery baseline: each worker's
        journal is truncated (the FIFO round trip proves every prior
        post is reflected in the state)."""
        if self._closed:
            raise ShardError("worker pool is closed")
        return [self._checkpoint_worker(w) for w in self._workers]

    def restore_workers(self, states: Sequence[Any]) -> None:
        """Restore every role from ``states`` (one per worker, as
        returned by :meth:`checkpoint_workers`)."""
        if len(states) != len(self._workers):
            raise CheckpointError(
                f"snapshot carries {len(states)} shard states, pool has "
                f"{len(self._workers)} workers — resume with the same "
                f"shard count")
        for w, state in zip(self._workers, states):
            self._check(w)
            w.last_ckpt = state
            w.journal.clear()
            w.since_ckpt = 0
            while True:
                try:
                    token = self._send_direct(w, "__restore__", state,
                                              reply=True)
                    self._await_direct(w, token)
                    break
                except _WorkerDied as exc:
                    self._respawn(w, exc.reason)
                    # _respawn already restored last_ckpt (= state) and
                    # replayed the (empty) journal on success.
                    break

    def _checkpoint_worker(self, w: _Worker) -> Any:
        while True:
            try:
                token = self._send_direct(w, "__checkpoint__", None,
                                          reply=True)
                state = self._await_direct(w, token)
            except _WorkerDied as exc:
                # Recover (restore previous checkpoint + replay the
                # journal — it is still intact) and retry; the restart
                # budget in _respawn bounds this loop.
                self._respawn(w, exc.reason)
                continue
            w.last_ckpt = state
            w.journal.clear()
            w.since_ckpt = 0
            return state

    def _respawn(self, w: _Worker, reason: str) -> None:
        """Replace a dead worker: fresh fork from the pristine role,
        restore the last checkpoint, replay the journal.  Raises the
        terminal :class:`ShardError` when recovery is disabled or the
        restart budget is exhausted."""
        if not self._recovery:
            w.failed = reason
            raise ShardError(f"shard worker {w.index} {reason}")
        while True:
            w.restarts += 1
            if w.restarts > self._max_restarts:
                w.failed = (f"{reason}; restart budget "
                            f"({self._max_restarts}) exhausted")
                raise ShardError(
                    f"shard worker {w.index} cannot be recovered: "
                    f"{reason} after {self._max_restarts} restart "
                    f"attempt(s) — giving up")
            # Full jitter: U(0, backoff * 2**k) rather than the bare
            # exponential — deterministic backoff would march every
            # worker felled by the same cause through identical restart
            # instants (a restart storm); the seeded RNG keeps tests
            # reproducible.
            time.sleep(self._restart_rng.uniform(
                0.0, self._restart_backoff * (2 ** (w.restarts - 1))))
            try:
                w.conn.close()
            except OSError:
                pass
            for shm in w.pending.values():
                release_shared_memory(shm)
            w.pending.clear()
            if w.proc.is_alive():
                w.proc.terminate()
            w.proc.join(timeout=5.0)
            w.proc, w.conn = self._spawn(w.index)
            try:
                if w.last_ckpt is not None:
                    token = self._send_direct(w, "__restore__",
                                              w.last_ckpt, reply=True)
                    self._await_direct(w, token)
                self._replay(w)
            except _WorkerDied as exc:
                reason = exc.reason
                continue
            return

    def _replay(self, w: _Worker) -> None:
        """Re-send every journaled batch to a freshly restored worker,
        re-requesting replies only for tokens still awaited."""
        for token, op, meta, arrays, reply in w.journal:
            want = reply and token in w.awaiting
            shm, specs = _pack_frames(arrays)
            if shm is not None:
                w.pending[token] = shm
            try:
                w.conn.send(("op", token, op, meta, want,
                             None if shm is None else shm.name, specs))
            except (OSError, ValueError) as exc:
                if shm is not None:
                    shm = w.pending.pop(token, None)
                    if shm is not None:
                        release_shared_memory(shm)
                raise _WorkerDied(f"send failed during replay: {exc}")
            while len(w.pending) >= MAX_PENDING:
                self._handle_msg(w, self._recv_direct(w))

    # -- internals -----------------------------------------------------------

    def _send(self, index: int, op: str, meta: Any,
              arrays: Mapping[str, np.ndarray] | None,
              reply: bool) -> tuple[int, int]:
        w = self._workers[index]
        self._check(w)
        if self._faults is not None:
            if self._faults.on_post(index, op) == "kill":
                # Simulated crash: the worker dies *before* this batch
                # reaches it; delivery happens via recovery replay.
                w.proc.kill()
                w.proc.join(timeout=5.0)
        # Opportunistically drain acks, then block while over the cap.
        while w.conn.poll(0):
            msg = self._recv(w)
            if msg is not None:
                self._handle_msg(w, msg)
        while len(w.pending) >= MAX_PENDING:
            msg = self._recv(w)
            if msg is not None:
                self._handle_msg(w, msg)
        self._token += 1
        token = self._token
        if self._recovery:
            self.journal_append(w, token, op, meta, arrays, reply)
        if reply:
            w.awaiting.add(token)
        shm, specs = _pack_frames(arrays)
        if shm is not None:
            w.pending[token] = shm
        try:
            w.conn.send(("op", token, op, meta, reply,
                         None if shm is None else shm.name, specs))
        except (OSError, ValueError) as exc:
            if shm is not None:
                release_shared_memory(w.pending.pop(token))
            if self._recovery:
                # The batch is journaled: recovery replays it, so the
                # logical send has happened once the respawn succeeds.
                self._respawn(w, f"send failed: {exc}")
                self._maybe_checkpoint(w)
                return index, token
            w.failed = f"send failed: {exc}"
            raise ShardError(
                f"shard worker {w.index} is gone "
                f"(exitcode {w.proc.exitcode}): {exc}") from exc
        self._maybe_checkpoint(w)
        return index, token

    def journal_append(self, w: _Worker, token: int, op: str, meta: Any,
                       arrays: Mapping[str, np.ndarray] | None,
                       reply: bool) -> None:
        w.journal.append(
            (token, op, meta, None if arrays is None else dict(arrays),
             reply))
        w.since_ckpt += 1

    def _maybe_checkpoint(self, w: _Worker) -> None:
        if (self._recovery
                and w.since_ckpt >= self._checkpoint_every):
            self._checkpoint_worker(w)

    def _send_direct(self, w: _Worker, op: str, meta: Any,
                     reply: bool) -> int:
        """Non-journaled send for pool-internal ops (checkpoint,
        restore); raises :class:`_WorkerDied` instead of recovering."""
        self._token += 1
        token = self._token
        try:
            w.conn.send(("op", token, op, meta, reply, None, ()))
        except (OSError, ValueError) as exc:
            raise _WorkerDied(f"send failed: {exc}")
        return token

    def _await_direct(self, w: _Worker, token: int) -> Any:
        while token not in w.results:
            self._handle_msg(w, self._recv_direct(w))
        return w.results.pop(token)

    def _await_readable(self, w: _Worker) -> None:
        """Ack-timeout guard: a dead worker breaks the pipe, but a
        wedged-but-alive one never writes — without a timeout the
        parent inherits the wedge.  Raises :class:`ShardError` naming
        the worker when ``ack_timeout`` elapses with no reply."""
        if self._ack_timeout is None:
            return
        if not w.conn.poll(self._ack_timeout):
            w.failed = (f"no reply within ack_timeout="
                        f"{self._ack_timeout}s (worker alive but wedged)")
            raise ShardError(
                f"shard worker {w.index} (pid {w.proc.pid}) sent no "
                f"reply within {self._ack_timeout}s — the process is "
                f"still alive but wedged; the pool has given up on it")

    def _recv_direct(self, w: _Worker):
        self._await_readable(w)
        try:
            return w.conn.recv()
        except (EOFError, OSError):
            for shm in w.pending.values():
                release_shared_memory(shm)
            w.pending.clear()
            raise _WorkerDied(
                f"worker died (exitcode {w.proc.exitcode})")

    def _recv(self, w: _Worker):
        """Receive one message, or recover a dead worker and return
        ``None`` (the caller re-checks its wait condition)."""
        self._await_readable(w)
        try:
            return w.conn.recv()
        except (EOFError, OSError) as exc:
            reason = f"worker died (exitcode {w.proc.exitcode})"
            for shm in w.pending.values():
                release_shared_memory(shm)
            w.pending.clear()
            if self._recovery:
                self._respawn(w, reason)     # terminal ShardError inside
                return None                  # when the budget runs out
            w.failed = reason
            raise ShardError(
                f"shard worker {w.index} died "
                f"(exitcode {w.proc.exitcode})") from exc

    def _handle_msg(self, w: _Worker, msg) -> None:
        kind = msg[0]
        if kind == "ack":
            if self._faults is not None:
                action = self._faults.on_ack(w.index)
                if action == "drop":
                    # Segment stays pending; released at close (the
                    # teardown paths are idempotent by design).
                    return
                if action == "dup":
                    shm = w.pending.pop(msg[1], None)
                    if shm is not None:
                        release_shared_memory(shm)
                    # fall through: process the same ack again —
                    # exercises release idempotency
            shm = w.pending.pop(msg[1], None)
            if shm is not None:
                release_shared_memory(shm)
        elif kind == "result":
            w.results[msg[1]] = msg[2]
            w.awaiting.discard(msg[1])
        else:                                    # ("error", token, tb)
            w.failed = msg[2]
            raise ShardError(
                f"shard worker {w.index} raised:\n{msg[2]}")

    def _check(self, w: _Worker) -> None:
        if self._closed:
            raise ShardError("worker pool is closed")
        if w.failed is not None:
            raise ShardError(
                f"shard worker {w.index} already failed:\n{w.failed}")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and release pending segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()          # runs _shutdown exactly once

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
