"""Network-wide query deployment: one pipeline per switch.

The language is defined over observations from *every* queue in the
network (§2), but each physical switch only sees its own queues.  This
module deploys a compiled program onto every switch of a simulated
network — each switch runs its own cache + backing store over its local
observations — and combines per-switch results in the collection layer:

* **cross-switch-combinable folds** — those whose state update is
  *commutative across streams* (identity matrix ``A``, i.e. counters
  and sums, even history-dependent ones like ``outofseq``): per-switch
  values are merged additively into one network-wide row per key, which
  is exact regardless of how a flow's packets interleaved across
  switches;
* everything else (EWMA and other order-dependent folds, non-linear
  folds): the network-wide value depends on the cross-switch packet
  order, which no per-switch decomposition preserves, so results stay
  *per (key, switch)* — still exactly what an operator wants for
  "which queue hurts this flow".

This mirrors the paper's deployment story (queries are installed on
switches; results are pulled from backing stores) one step further
than the single-switch evaluation of §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.ast_nodes import Program
from repro.core.compiler import CompileOptions, compile_program
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable, Row
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.network.records import PacketRecord
from repro.network.simulator import NetworkSimulator
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.pipeline import DEFAULT_GEOMETRY, GeometrySpec, SwitchPipeline


@dataclass
class NetworkRunReport:
    """Results of a network-wide deployment."""

    combined: dict[str, ResultTable]       # query -> network-wide table
    per_switch: dict[str, dict[str, ResultTable]]  # switch -> query -> table
    combinable: dict[str, bool]            # query -> combined exactly?

    def result(self, query_name: str) -> ResultTable:
        return self.combined[query_name]


class NetworkDeployment:
    """Installs one compiled program on every switch of a topology.

    Args:
        source: Query text or a built :class:`Program`.
        simulator: The network whose switches observe traffic.  Each
            switch is identified by its node name; observations are
            routed to the switch owning the observed queue.
        params, geometry, policy, seed, exact_history: as in
            :class:`repro.telemetry.runtime.QueryEngine`.
    """

    def __init__(
        self,
        source: str | Program,
        simulator: NetworkSimulator,
        params: Mapping[str, Numeric] | None = None,
        geometry: GeometrySpec = DEFAULT_GEOMETRY,
        policy: str = "lru",
        seed: int = 0,
        exact_history: bool = False,
    ):
        program = parse_program(source) if isinstance(source, str) else source
        self.resolved = resolve_program(program)
        self.compiled = compile_program(
            self.resolved, CompileOptions(exact_history=exact_history))
        self.params = dict(params or {})
        self.simulator = simulator
        self._queue_owner = {
            qid: edge[0] for edge, qid in simulator.topology._qids.items()
        }
        self.pipelines: dict[str, SwitchPipeline] = {
            switch: SwitchPipeline(self.compiled, params=self.params,
                                   geometry=geometry, policy=policy, seed=seed)
            for switch in simulator.topology.switches()
        }

    # -- execution -----------------------------------------------------------

    def run(self, records: Iterable[PacketRecord]) -> NetworkRunReport:
        """Route each observation to the switch owning its queue, then
        collect and combine results."""
        for record in records:
            owner = self._queue_owner.get(record.qid)
            if owner is None:
                continue  # observation from an unmonitored queue
            self.pipelines[owner].process(record)

        per_switch = {
            switch: pipeline.results()
            for switch, pipeline in self.pipelines.items()
        }
        combined: dict[str, ResultTable] = {}
        combinable: dict[str, bool] = {}
        for stage in self.compiled.groupby_stages:
            name = stage.query_name
            combinable[name] = self._stage_combinable(stage)
            if combinable[name]:
                combined[name] = self._combine_additive(stage, per_switch)
            else:
                combined[name] = self._tag_per_switch(stage, per_switch)
        for stage in self.compiled.select_stages:
            merged = ResultTable(schema=stage.output)
            for tables in per_switch.values():
                merged.rows.extend(tables[stage.query_name].rows)
            combined[stage.query_name] = merged
            combinable[stage.query_name] = True
        return NetworkRunReport(combined=combined, per_switch=per_switch,
                                combinable=combinable)

    # -- combination ------------------------------------------------------------

    @staticmethod
    def _stage_combinable(stage) -> bool:
        """Exact cross-switch combination requires every fold's ``A``
        to be the identity (stream-commutative accumulation)."""
        return all(f.linearity.linear and f.linearity.matrix_kind == "identity"
                   for f in stage.folds)

    def _combine_additive(self, stage, per_switch) -> ResultTable:
        key_fields = stage.key.fields
        inits = {
            f.column: f.instance.initial_state() for f in stage.folds
        }
        merged_rows: dict[tuple, Row] = {}
        for tables in per_switch.values():
            for row in tables[stage.query_name].rows:
                key = tuple(row[k] for k in key_fields)
                target = merged_rows.get(key)
                if target is None:
                    merged_rows[key] = dict(row)
                    continue
                for col in stage.output.columns:
                    if col.kind != "agg":
                        continue
                    init = inits[col.fold].get(col.state_var, 0)
                    target[col.name] += row[col.name] - init
        out = ResultTable(schema=stage.output)
        out.rows = list(merged_rows.values())
        return out

    @staticmethod
    def _tag_per_switch(stage, per_switch) -> ResultTable:
        """Non-combinable stages: union of rows with a ``switch``
        column appended (per-queue truth, not a network total)."""
        out = ResultTable(schema=stage.output)
        for switch, tables in per_switch.items():
            for row in tables[stage.query_name].rows:
                tagged = dict(row)
                tagged["switch"] = switch
                out.rows.append(tagged)
        return out

    # -- statistics -------------------------------------------------------------

    def cache_stats(self) -> dict[str, dict[str, object]]:
        return {switch: pipeline.cache_stats()
                for switch, pipeline in self.pipelines.items()}
