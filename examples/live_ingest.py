#!/usr/bin/env python
"""Live ingest service: socket front end with backpressure + drain.

Everything else in this repo feeds a session in-process.  The ingest
service (:meth:`~repro.telemetry.runtime.QueryEngine.serve`, or
``python -m repro.cli serve`` on the command line) moves that behind a
localhost socket: a long-running server owns the sessions, clients
stream length-framed columnar batches at it, and robustness is the
contract — bounded per-session queues answer ``BUSY``/``READY``
instead of inflating, overload is refused at admission with a reason,
the client retries disconnects with full-jitter backoff and resumes
exactly where the last acknowledged batch left off, and a graceful
drain checkpoints every session to disk before exiting.

This script runs the whole loop in one process:

1. start a server (deliberately slow consumer, tiny queue watermark,
   checkpoint directory configured),
2. stream a datacenter trace through :class:`IngestClient` — with a
   mid-frame disconnect injected to show the retry path — and watch
   BUSY/READY backpressure fire,
3. fetch the final report over the wire and check it is bit-identical
   to the one-shot ``run()`` of the same trace,
4. stop the server (the graceful-drain path: SIGTERM does the same)
   and resume its drain checkpoint offline.

Run:  python examples/live_ingest.py
"""

import tempfile
from pathlib import Path

from repro.network.records import ObservationTable
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.client import IngestClient
from repro.telemetry.faults import FaultInjector, FaultPlan
from repro.telemetry.runtime import QueryEngine
from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload

QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip"
CHUNK = 2048


def chunked(table, size):
    columns = table.columns()
    for lo in range(0, len(table), size):
        yield ObservationTable.from_arrays(
            {name: arr[lo:lo + size] for name, arr in columns.items()})


def main() -> None:
    trace = DatacenterWorkload(DatacenterConfig(
        n_flows=300, duration_ns=60_000_000, seed=23)).observation_table()
    trace = ObservationTable.from_arrays(trace.columns())
    engine = QueryEngine(QUERY,
                         geometry=CacheGeometry.set_associative(512, ways=8))
    ckpt_dir = Path(tempfile.mkdtemp(prefix="repro_serve_"))

    # 1. A server with a deliberately slow consumer and a queue small
    #    enough that the client will hit the high watermark.
    server = engine.serve(window=4096, queue_high_bytes=64_000,
                          queue_low_bytes=16_000, ingest_delay=0.005,
                          checkpoint_dir=ckpt_dir)
    host, port = server.start()
    print(f"ingest service listening on {host}:{port}")

    # 2. Stream the trace.  The injected fault kills the connection
    #    halfway through frame 4; the client reconnects, learns which
    #    sequence numbers the server already applied, and resends only
    #    the rest — exactly-once, no duplicated ingest.
    injector = FaultInjector(FaultPlan(disconnect_sends={4}))
    client = IngestClient(("127.0.0.1", port), session="live",
                          faults=injector, retry_seed=7)
    client.connect()
    for batch in chunked(trace, CHUNK):
        client.send(batch)
    final = client.close_session()
    client.disconnect()
    meta = final["serve"]
    print(f"streamed {meta['records_in']} records in "
          f"{meta['batches_in']} batches: "
          f"{meta['busy_events']} BUSY pauses, "
          f"{client.reconnects} reconnect(s) after the injected "
          f"disconnect, {meta['shed_batches']} shed")

    # 3. The served report must match the one-shot run bit for bit.
    expected = engine.run(trace)
    report = final["report"]
    same = (report.result.rows == expected.result.rows
            and all((report.cache_stats[q].accesses,
                     report.cache_stats[q].evictions)
                    == (expected.cache_stats[q].accesses,
                        expected.cache_stats[q].evictions)
                    for q in expected.cache_stats))
    print(f"served result bit-identical to run(): "
          f"{'yes' if same else 'NO'} ({len(report.result)} rows)")

    # 4. Graceful drain: leave a second session mid-stream (as a real
    #    SIGTERM would catch it), stop the server, and watch the drain
    #    checkpoint it to the configured directory.
    half = ObservationTable.from_arrays(
        {name: arr[:len(trace) // 2] for name, arr in trace.columns().items()})
    with IngestClient(("127.0.0.1", port), session="midstream") as abandoned:
        for batch in chunked(half, CHUNK):
            abandoned.send(batch)
        abandoned.flush()                    # acked, but never closed
    drain = server.stop()
    print(f"drained: sessions={sorted(drain['sessions'])} "
          f"rejected={drain['rejected']} idle_closed={drain['idle_closed']}")

    # The mid-stream session resumes offline from the drain checkpoint
    # and finishes to the same answer as an uninterrupted run.
    snapshot = ckpt_dir / "midstream.ckpt"
    print(f"drain checkpoint: {snapshot.name} "
          f"({snapshot.stat().st_size / 1024:.1f} KiB)")
    resumed = engine.resume(snapshot.read_bytes())
    skip = resumed.packets_ingested
    rest = ObservationTable.from_arrays(
        {name: arr[skip:] for name, arr in trace.columns().items()})
    for batch in chunked(rest, CHUNK):
        resumed.ingest(batch)
    finished = resumed.close(include_invalid=True)
    same_resumed = finished.result.rows == expected.result.rows
    print(f"resumed {skip} packets in, finished offline: "
          f"bit-identical to run(): {'yes' if same_resumed else 'NO'}")
    if not (same and same_resumed):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
