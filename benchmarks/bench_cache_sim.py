"""PERF — cache-replacement simulation: vector engine vs row engine.

The Fig. 5 eviction study is a grid of 18 cache simulations (three
geometries × ``PAPER_CAPACITIES``) over one CAIDA-like key stream.
This bench runs the full grid on both engines at the Fig. 5 scale
(1/256), asserts the acceptance criteria of the vector engine
(:mod:`repro.switch.kvstore.vector_cache`):

* **bit-identical counters** — every ``CacheStats`` field equal on all
  18 cells (the vector engine is exact, not a model);
* **>= 10x end-to-end** — the full grid, stream shared, runs at least
  an order of magnitude faster on the vector engine;

and writes a ``BENCH_cache_sim.json`` artifact (accesses/s per
geometry, row vs vector, plus grid totals) at the repo root to anchor
the performance trajectory.

The ``smoke`` tests replay a tiny grid (scale 1/4096) and assert only
equality — they are what CI runs on every push.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.eviction import GEOMETRIES, PAPER_CAPACITIES, scaled_capacity
from repro.analysis.sweep_exec import stats_fn
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

SCALE = 1.0 / 256.0
SMOKE_SCALE = 1.0 / 4096.0
GEOMETRY_NAMES = ("hash_table", "8way", "fully_associative")
SEED = 2016_04

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cache_sim.json"


def _counters(stats):
    return (stats.accesses, stats.hits, stats.misses,
            stats.insertions, stats.evictions)


def _run_grid(keys, engine: str, scale: float):
    """The Fig. 5 grid on one engine over a pre-generated stream:
    {(geometry, paper_pairs): counters}, plus per-geometry seconds."""
    stats_for = stats_fn(keys, SEED, engine)
    cells: dict[tuple[str, int], tuple[int, ...]] = {}
    seconds: dict[str, float] = {}
    for name in GEOMETRY_NAMES:
        t0 = time.perf_counter()
        for paper_pairs in PAPER_CAPACITIES:
            geometry = GEOMETRIES[name](scaled_capacity(paper_pairs, scale))
            cells[(name, paper_pairs)] = _counters(stats_for(geometry))
        seconds[name] = time.perf_counter() - t0
    return cells, seconds


# -- smoke (CI): tiny grid, equality only ------------------------------------

@pytest.fixture(scope="module")
def smoke_keys():
    return generate_key_stream(CaidaTraceConfig(scale=SMOKE_SCALE, seed=SEED))


def test_smoke_grid_counters_bit_identical(smoke_keys):
    row, _ = _run_grid(smoke_keys, "row", SMOKE_SCALE)
    vector, _ = _run_grid(smoke_keys, "vector", SMOKE_SCALE)
    assert vector == row


def test_smoke_policies_bit_identical(smoke_keys):
    """FIFO/random replays (ablation policies) also match exactly."""
    from repro.switch.kvstore.cache import CacheGeometry, simulate_eviction_count

    geometry = CacheGeometry.set_associative(256, ways=8)
    for policy in ("fifo", "random"):
        row = simulate_eviction_count(smoke_keys, geometry, policy=policy,
                                      seed=SEED, engine="row")
        vec = simulate_eviction_count(smoke_keys, geometry, policy=policy,
                                      seed=SEED, engine="vector")
        assert _counters(vec) == _counters(row)


# -- acceptance: full Fig. 5 grid, equality + >=10x ---------------------------

@pytest.fixture(scope="module")
def full_comparison(report):
    keys = generate_key_stream(CaidaTraceConfig(scale=SCALE, seed=SEED))
    t0 = time.perf_counter()
    vector, vector_secs = _run_grid(keys, "vector", SCALE)
    vector_total = time.perf_counter() - t0
    t0 = time.perf_counter()
    row, row_secs = _run_grid(keys, "row", SCALE)
    row_total = time.perf_counter() - t0

    n = len(keys)
    cells = len(GEOMETRY_NAMES) * len(PAPER_CAPACITIES)
    payload = {
        "scale": SCALE,
        "packets": n,
        "grid_cells": cells,
        "row_seconds": round(row_total, 3),
        "vector_seconds": round(vector_total, 3),
        "speedup": round(row_total / vector_total, 2),
        "per_geometry": {
            name: {
                "row_accesses_per_s": round(
                    n * len(PAPER_CAPACITIES) / row_secs[name]),
                "vector_accesses_per_s": round(
                    n * len(PAPER_CAPACITIES) / vector_secs[name]),
            }
            for name in GEOMETRY_NAMES
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"Fig. 5 grid ({cells} cells, {n} accesses each, scale {SCALE:.4g})",
        f"row engine:    {row_total:6.2f}s",
        f"vector engine: {vector_total:6.2f}s  -> {row_total / vector_total:.1f}x",
    ]
    for name in GEOMETRY_NAMES:
        pg = payload["per_geometry"][name]
        lines.append(f"  {name:>17}: {pg['row_accesses_per_s'] / 1e6:6.2f}M -> "
                     f"{pg['vector_accesses_per_s'] / 1e6:7.2f}M accesses/s")
    lines.append(f"artifact: {ARTIFACT.name}")
    report("PERF: cache-sim engines (row vs vector)", "\n".join(lines))
    return row, vector, row_total, vector_total


def test_fig5_grid_counters_bit_identical(full_comparison):
    row, vector, _, _ = full_comparison
    assert vector == row


def test_fig5_grid_vector_at_least_10x(full_comparison):
    """The PR's acceptance bar: the full Fig. 5 sweep, end to end over
    a shared stream, at least 10x faster on the vector engine."""
    _, _, row_total, vector_total = full_comparison
    assert row_total >= 10.0 * vector_total, (
        f"vector engine only {row_total / vector_total:.1f}x faster "
        f"({row_total:.2f}s row vs {vector_total:.2f}s vector)")
