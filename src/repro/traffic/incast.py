"""Incast scenario generator (paper §1: "localize queues suffering from
incast", §5: "track which applications contribute to TCP incast at a
particular queue").

Incast: many senders answer one aggregator simultaneously; their
synchronized bursts collide at the aggregator's egress queue, building
a deep queue and dropping packets.  The paper cites this as a problem
endpoint-based telemetry cannot localise — the whole point of per-queue
observations.

The generator runs the scenario on the single-switch topology and
returns the observation table plus ground-truth metadata (who the
incast senders are, which queue is the hotspot) so examples and tests
can check that the catalog queries actually find them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.records import ObservationTable
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LinkSpec, Topology, single_switch


@dataclass(frozen=True)
class IncastConfig:
    """Scenario parameters."""

    n_senders: int = 24
    n_background: int = 4
    response_packets: int = 48          # per sender per round
    rounds: int = 5
    round_gap_ns: int = 2_000_000       # 2 ms between request rounds
    pkt_len: int = 1500
    buffer_packets: int = 32
    link_gbps: float = 10.0
    background_rate_pps: float = 10_000.0
    duration_ns: int = 12_000_000
    seed: int = 42


@dataclass
class IncastResult:
    """Scenario output with ground truth for validation."""

    table: ObservationTable
    hotspot_qid: int
    aggregator_ip: int
    sender_ips: list[int]
    drops: int
    peak_depth: int


def generate_incast(config: IncastConfig | None = None) -> IncastResult:
    """Run the incast scenario on the simulator."""
    config = config or IncastConfig()
    rng = np.random.default_rng(config.seed)

    n_hosts = config.n_senders + config.n_background + 1
    topo: Topology = single_switch(
        n_hosts, LinkSpec(rate_gbps=config.link_gbps,
                          buffer_packets=config.buffer_packets),
    )
    sim = NetworkSimulator(topo)
    aggregator = "h0"
    senders = [f"h{i}" for i in range(1, config.n_senders + 1)]
    background = [f"h{i}" for i in
                  range(config.n_senders + 1, n_hosts)]

    # Synchronized response bursts: every round, all senders blast the
    # aggregator within a tiny jitter window.
    seqs = {s: 1000 for s in senders}
    for round_no in range(config.rounds):
        base = round_no * config.round_gap_ns
        for sender in senders:
            jitter = int(rng.integers(0, 20_000))
            for p in range(config.response_packets):
                gap = int(rng.integers(500, 1_500))
                seq = seqs[sender]
                seqs[sender] = seq + config.pkt_len - 40 + 1
                sim.inject(
                    time_ns=base + jitter + p * gap,
                    src=sender, dst=aggregator,
                    pkt_len=config.pkt_len,
                    srcport=5000, dstport=8000 + round_no, tcpseq=seq,
                )

    # Light background chatter between other hosts and the aggregator.
    for host in background:
        t = 0
        mean_gap = 1e9 / config.background_rate_pps
        while t < config.duration_ns:
            t += int(max(1, rng.exponential(mean_gap)))
            sim.inject(time_ns=t, src=host, dst=aggregator,
                       pkt_len=200, srcport=6000, dstport=9000)

    table = sim.run()
    hotspot = topo.qid("s0", aggregator)
    queue = sim.queues[hotspot]
    return IncastResult(
        table=table,
        hotspot_qid=hotspot,
        aggregator_ip=sim.host_ip(aggregator),
        sender_ips=[sim.host_ip(s) for s in senders],
        drops=queue.drops,
        peak_depth=queue.peak_depth,
    )
