"""Eviction-rate study — reproduces Fig. 5.

The paper simulates ``SELECT COUNT GROUPBY 5tuple`` over the CAIDA
trace for three cache geometries (hash table, 8-way associative, fully
associative) across cache capacities of 2¹⁶–2²¹ pairs, reporting

* the eviction rate as a **fraction of packets** (left plot), and
* the implied **backing-store write rate** under typical datacenter
  conditions (right plot; 22.6 M average packets/s).

This module runs the same sweep at a configurable scale: the synthetic
trace and the cache capacities are scaled together so the
working-set-to-cache ratio — which determines the eviction fraction —
matches the paper's operating points.

Execution knobs (see :mod:`repro.analysis.sweep_exec`): ``engine``
selects the cache simulator per grid cell (``"vector"`` — array-native,
bit-identical, ~an order of magnitude faster; ``"row"`` — the
per-access reference; ``"auto"``), and ``workers`` fans the grid across
processes sharing one generated key stream, which makes multi-10M-access
sweeps (scale 1/64 and up) practical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.switch.area import (
    cache_bits,
    evictions_per_second,
)
from repro.switch.kvstore.cache import CacheGeometry
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

#: Fig. 5 key-value pair width: 104-bit 5-tuple key + 24-bit counter.
PAIR_BITS = 128

#: The paper's cache capacities, in pairs (2^16 .. 2^21 = 8..256 Mbit).
PAPER_CAPACITIES: tuple[int, ...] = tuple(1 << e for e in range(16, 22))

#: Geometry constructors keyed by the paper's three configurations.
GEOMETRIES = {
    "hash_table": CacheGeometry.hash_table,
    "8way": lambda capacity: CacheGeometry.set_associative(capacity, ways=8),
    "fully_associative": CacheGeometry.fully_associative,
}


@dataclass(frozen=True)
class EvictionPoint:
    """One (geometry, capacity) measurement."""

    geometry: str
    capacity_pairs: int            # scaled capacity actually simulated
    paper_pairs: int               # the paper-scale capacity it models
    eviction_fraction: float
    packets: int
    flows: int

    @property
    def paper_mbits(self) -> float:
        return cache_bits(self.paper_pairs, PAIR_BITS) / (1 << 20)

    @property
    def evictions_per_sec(self) -> float:
        """Backing-store write rate under §4 datacenter conditions."""
        return evictions_per_second(self.eviction_fraction)


@dataclass
class EvictionSweep:
    """Full Fig. 5 dataset."""

    scale: float
    points: list[EvictionPoint] = field(default_factory=list)

    def series(self, geometry: str) -> list[EvictionPoint]:
        return sorted((p for p in self.points if p.geometry == geometry),
                      key=lambda p: p.capacity_pairs)

    def point(self, geometry: str, paper_pairs: int) -> EvictionPoint:
        for p in self.points:
            if p.geometry == geometry and p.paper_pairs == paper_pairs:
                return p
        raise KeyError((geometry, paper_pairs))


def scaled_capacity(paper_pairs: int, scale: float) -> int:
    """Paper-scale pair count -> simulated capacity (8-divisible)."""
    return max(8, int(paper_pairs * scale) // 8 * 8)


def run_eviction_sweep(
    scale: float = 1.0 / 256.0,
    capacities: tuple[int, ...] = PAPER_CAPACITIES,
    geometries: tuple[str, ...] = ("hash_table", "8way", "fully_associative"),
    seed: int = 2016_04,
    engine: str = "auto",
    workers: int | None = None,
    policy: str = "lru",
) -> EvictionSweep:
    """Run the Fig. 5 sweep at ``scale``.

    ``capacities`` are paper-scale pair counts; each is multiplied by
    ``scale`` (rounded to an 8-divisible value) before simulation, so
    the returned points can be plotted against the paper's axes.

    ``engine`` picks the cache simulator per cell (``"vector"`` — the
    array-native engine, bit-identical counters and an order of
    magnitude faster, ``"row"`` — the per-access reference, ``"auto"``
    — vector for this module's integer key streams); ``workers`` > 1
    fans the (geometry, capacity) grid across processes via
    :mod:`repro.analysis.sweep_exec`, sharing one generated key stream.
    """
    if workers and workers > 1:
        from repro.analysis.sweep_exec import run_eviction_sweep_parallel

        return run_eviction_sweep_parallel(
            scale=scale, capacities=capacities, geometries=geometries,
            seed=seed, engine=engine, workers=workers, policy=policy)
    from repro.analysis.sweep_exec import stats_fn

    keys = generate_key_stream(CaidaTraceConfig(scale=scale, seed=seed))
    stats_for = stats_fn(keys, seed, engine)
    flows = int(len(np.unique(keys)))
    sweep = EvictionSweep(scale=scale)
    for paper_pairs in capacities:
        scaled = scaled_capacity(paper_pairs, scale)
        for name in geometries:
            geometry = GEOMETRIES[name](scaled)
            stats = stats_for(geometry, policy)
            sweep.points.append(EvictionPoint(
                geometry=name,
                capacity_pairs=scaled,
                paper_pairs=paper_pairs,
                eviction_fraction=stats.eviction_fraction,
                packets=len(keys),
                flows=flows,
            ))
    return sweep


def shape_checks(sweep: EvictionSweep) -> list[str]:
    """The qualitative claims Fig. 5 makes; returns violated claims.

    1. fully associative ≤ 8-way ≤ hash table, per capacity (within a
       small tolerance);
    2. eviction fraction decreases with capacity, per geometry;
    3. the 8-way cache is within a few percentage points of fully
       associative (the paper: "within 2% of this optimum").
    """
    problems: list[str] = []
    capacities = sorted({p.paper_pairs for p in sweep.points})
    tol = 0.002
    for capacity in capacities:
        try:
            full = sweep.point("fully_associative", capacity).eviction_fraction
            eight = sweep.point("8way", capacity).eviction_fraction
            hash_t = sweep.point("hash_table", capacity).eviction_fraction
        except KeyError:
            continue
        if not (full <= eight + tol):
            problems.append(f"{capacity}: fully associative worse than 8-way")
        if not (eight <= hash_t + tol):
            problems.append(f"{capacity}: 8-way worse than hash table")
        if eight - full > 0.05:
            problems.append(f"{capacity}: 8-way more than 5pp above optimum")
    for name in ("hash_table", "8way", "fully_associative"):
        series = sweep.series(name)
        for a, b in zip(series, series[1:]):
            if b.eviction_fraction > a.eviction_fraction + tol:
                problems.append(
                    f"{name}: eviction fraction rises from {a.paper_pairs} "
                    f"to {b.paper_pairs} pairs"
                )
    return problems
