"""Retrying client for the live ingest service.

:class:`IngestClient` is the well-behaved peer of
:class:`~repro.telemetry.serve.IngestServer`: it frames columnar
batches onto a localhost TCP or UNIX socket, honors ``BUSY`` credit
frames (stop sending until ``READY``), and retries disconnects with
exponential backoff plus *full jitter* — ``sleep ~ U(0, min(cap,
base * 2**attempt))`` — so a fleet of clients bounced by a server
restart does not reconnect in lockstep.

Delivery is exactly-once from the session's point of view despite
at-least-once sends: every batch carries a per-session sequence
number, the server's ``HELLO`` reply names the next sequence it
expects, and after a reconnect the client drops batches the server
already applied and resends the rest in order.  A batch cut in half by
a mid-frame disconnect was never applied (the server discards the
incomplete frame) and is resent; a batch whose *ack* was lost was
applied and is skipped (or acked as a duplicate).  This is what makes
the differential property testable under injected connection faults:
served ingest stays bit-identical to :meth:`QueryEngine.run` no matter
where the connection breaks.

The client also accepts a :class:`~repro.telemetry.faults.FaultInjector`
whose connection-level plan (``disconnect_sends`` / ``corrupt_sends`` /
``stall_sends``) it consults before each batch transmission — the test
hook that makes those recovery paths deterministic.
"""

from __future__ import annotations

import random
import socket
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import SessionError
from repro.network.records import ObservationTable

from . import wire

if TYPE_CHECKING:
    from repro.telemetry.faults import FaultInjector


class ClientError(SessionError):
    """The client gave up: admission was rejected, the server reported
    a fatal protocol error, or retries were exhausted."""


class IngestClient:
    """Stream batches into one named served session.

    Args:
        address: ``(host, port)`` for TCP, or a UNIX socket path
            (``str``/``Path``, optionally ``"unix:"``-prefixed).
        session: Served session name to attach to (created on first
            HELLO if absent).
        connect_timeout / io_timeout: Socket timeouts in seconds.
        max_retries: Reconnect attempts per operation before
            :class:`ClientError`.
        backoff_base / backoff_cap: Full-jitter backoff parameters;
            attempt ``n`` sleeps ``U(0, min(cap, base * 2**(n-1)))``.
        retry_seed: Seed for the jitter RNG (reproducible tests).
        faults: Optional :class:`~repro.telemetry.faults.FaultInjector`
            consulted before every batch transmission.
        max_inflight: Unacked-batch pipeline depth; sending blocks for
            acks once this many batches are on the wire.
    """

    def __init__(self, address: tuple[str, int] | str | Path,
                 session: str = "default", *,
                 connect_timeout: float = 10.0, io_timeout: float = 60.0,
                 max_retries: int = 8, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, retry_seed: int | None = None,
                 faults: "FaultInjector | None" = None,
                 max_inflight: int = 8) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self._address = self._parse_address(address)
        self.session = session
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._rng = random.Random(retry_seed)
        self._faults = faults
        self._max_inflight = max_inflight
        self._sock: socket.socket | None = None
        self._buf = bytearray()
        self._next_seq = 0                     # next seq to assign
        self._unacked: OrderedDict[int, dict] = OrderedDict()
        self._unsent: deque[tuple[int, dict]] = deque()
        self._paused = False
        self._closed_remote = False
        # observability counters (asserted on by tests and the bench)
        self.busy_events = 0
        self.ready_events = 0
        self.reconnects = 0
        self.shed_batches = 0
        self.shed_records = 0
        self.shed_seqs: list[int] = []

    @staticmethod
    def _parse_address(
            address: tuple[str, int] | str | Path) -> tuple[str, Any]:
        if isinstance(address, tuple):
            host, port = address
            return ("tcp", (host, int(port)))
        text = str(address)
        if text.startswith("unix:"):
            text = text[len("unix:"):]
        return ("unix", text)

    # -- connection ------------------------------------------------------------

    def connect(self) -> dict:
        """Connect (retrying — the server may still be starting) and
        attach to the session; returns the HELLO reply."""
        return self._with_retry(self._hello)

    def _connect_once(self) -> None:
        kind, target = self._address
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(self._connect_timeout)
            sock.connect(target)
            sock.settimeout(self._io_timeout)
        except Exception:
            # until the socket lands on self._sock nothing else can
            # close it — a failed settimeout/connect must not leak the fd
            sock.close()
            raise
        self._sock = sock
        self._buf.clear()
        self._paused = False

    def _require_sock(self) -> socket.socket:
        """The live socket; raises into the retry path if the
        connection was dropped out from under the caller."""
        sock = self._sock
        if sock is None:
            raise ConnectionError("connection dropped")
        return sock

    def _hello(self) -> dict:
        if self._sock is None:
            self._connect_once()
        self._require_sock().sendall(wire.pack_frame(
            wire.T_HELLO, {"session": self.session}))
        ftype, payload = self._read_frame()
        if ftype == wire.T_REJECT:
            raise ClientError(
                f"admission rejected for session {self.session!r}: "
                f"{payload.get('reason')}")
        if ftype == wire.T_ERROR:
            raise ClientError(f"HELLO failed: {payload.get('reason')}")
        if ftype != wire.T_OK:
            raise ClientError(f"unexpected HELLO reply type {ftype}")
        if payload.get("closed"):
            self._closed_remote = True
            return payload
        # Exactly-once resync: drop what the server already applied,
        # queue the rest (in order) for resend.
        next_seq = payload["next_seq"]
        pending = sorted(
            [(seq, cols) for seq, cols in self._unacked.items()]
            + list(self._unsent))
        self._unacked.clear()
        self._unsent.clear()
        for seq, cols in pending:
            if seq >= next_seq:
                self._unsent.append((seq, cols))
        return payload

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._buf.clear()
        self._paused = False

    def _with_retry(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` against a live connection, reconnecting with
        full-jitter backoff on connection failures."""
        last: Exception | None = None
        for attempt in range(self._max_retries + 1):
            if attempt:
                delay = min(self._backoff_cap,
                            self._backoff_base * (2 ** (attempt - 1)))
                time.sleep(self._rng.uniform(0.0, delay))
                self.reconnects += 1
            try:
                if fn is self._hello:
                    return self._hello()
                if self._sock is None:
                    self._hello()
                return fn()
            except ClientError:
                self._drop_connection()
                raise
            except (ConnectionError, socket.timeout, TimeoutError,
                    OSError, wire.FrameError) as exc:
                last = exc
                self._drop_connection()
        raise ClientError(
            f"gave up on session {self.session!r} after "
            f"{self._max_retries} retries: {last}") from last

    # -- framing ---------------------------------------------------------------

    def _read_frame(self) -> tuple[int, dict]:
        sock = self._require_sock()
        while True:
            frame = self._parse_buffered()
            if frame is not None:
                return frame
            chunk = sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buf.extend(chunk)

    def _try_read_frame(self) -> tuple[int, dict] | None:
        """Drain any frames already buffered/readable without blocking."""
        frame = self._parse_buffered()
        if frame is not None:
            return frame
        sock = self._require_sock()
        sock.setblocking(False)
        try:
            while True:
                try:
                    chunk = sock.recv(1 << 16)
                except (BlockingIOError, InterruptedError):
                    return None
                if not chunk:
                    raise ConnectionError("server closed the connection")
                self._buf.extend(chunk)
                frame = self._parse_buffered()
                if frame is not None:
                    return frame
        finally:
            sock.settimeout(self._io_timeout)

    def _parse_buffered(self) -> tuple[int, dict] | None:
        if len(self._buf) < wire.HEADER.size:
            return None
        ftype, length, crc = wire.parse_header(
            bytes(self._buf[:wire.HEADER.size]))
        end = wire.HEADER.size + length
        if len(self._buf) < end:
            return None
        body = bytes(self._buf[wire.HEADER.size:end])
        del self._buf[:end]
        return ftype, wire.decode_payload(body, crc)

    # -- acks ------------------------------------------------------------------

    def _handle_ack(self, ftype: int, payload: dict) -> None:
        if ftype == wire.T_OK:
            self._unacked.pop(payload["seq"], None)
        elif ftype == wire.T_BUSY:
            self._unacked.pop(payload["seq"], None)
            self._paused = True
            self.busy_events += 1
        elif ftype == wire.T_READY:
            self._paused = False
            self.ready_events += 1
        elif ftype == wire.T_SHED:
            self._unacked.pop(payload["seq"], None)
            self.shed_batches += 1
            self.shed_records += payload.get("records", 0)
            self.shed_seqs.append(payload["seq"])
        elif ftype == wire.T_REJECT:
            raise ClientError(f"rejected: {payload.get('reason')}")
        elif ftype == wire.T_ERROR:
            reason = payload.get("reason")
            if payload.get("fatal"):
                raise ClientError(f"server error: {reason}")
            # Non-fatal (idle timeout, frame-sync drop): the server is
            # closing this connection; force the reconnect path.
            raise ConnectionError(f"server dropped connection: {reason}")
        else:
            raise ClientError(f"unexpected frame type {ftype} as batch ack")

    def _pump_acks(self) -> None:
        """Consume every ack currently available without blocking."""
        while True:
            frame = self._try_read_frame()
            if frame is None:
                return
            self._handle_ack(*frame)

    def _await_ack(self) -> None:
        self._handle_ack(*self._read_frame())

    # -- sending ---------------------------------------------------------------

    def send(self, batch: Any) -> None:
        """Queue one batch (an :class:`ObservationTable`, a row list,
        or a columns dict) and drive the pipeline; blocks while the
        server asserts backpressure or the pipeline is full."""
        self._check_open()
        columns = self._columnize(batch)
        self._unsent.append((self._next_seq, columns))
        self._next_seq += 1
        self._with_retry(self._drive_sends)

    def flush(self) -> None:
        """Block until every queued batch is acknowledged."""
        self._check_open()
        self._with_retry(self._drive_all)

    def _check_open(self) -> None:
        if self._closed_remote:
            raise ClientError(
                f"session {self.session!r} is already closed on the "
                f"server; its final report is available via close_session()")

    @staticmethod
    def _columnize(batch: Any) -> dict:
        if isinstance(batch, dict):
            return ObservationTable.from_arrays(batch).columns()
        if isinstance(batch, ObservationTable):
            return batch.columns()
        return ObservationTable(list(batch)).columns()

    def _drive_sends(self) -> None:
        """Transmit until the unsent queue is empty (respecting the
        pipeline depth and any ``BUSY`` pause in force)."""
        while self._unsent:
            self._pump_acks()
            if self._paused:
                self._await_ack()        # blocks until READY (or error)
                continue
            if len(self._unacked) >= self._max_inflight:
                self._await_ack()
                continue
            seq, columns = self._unsent.popleft()
            self._unacked[seq] = columns
            self._transmit_batch(seq, columns)

    def _drive_all(self) -> None:
        self._drive_sends()
        while self._unacked:
            self._await_ack()

    def _transmit_batch(self, seq: int, columns: dict) -> None:
        frame = bytearray(wire.pack_frame(
            wire.T_BATCH, {"seq": seq, "columns": columns}))
        sock = self._require_sock()
        action = self._faults.on_send() if self._faults is not None else None
        if action == "stall" and self._faults is not None:
            time.sleep(self._faults.plan.stall_seconds)
        elif action == "corrupt":
            # Flip one payload byte: the server's checksum rejects the
            # frame and drops the connection; the resync resends.
            frame[wire.HEADER.size] ^= 0xFF
        elif action == "disconnect":
            # Mid-frame disconnect: half the frame leaves, then the
            # socket dies — the server never sees a complete frame.
            sock.sendall(bytes(frame[:len(frame) // 2]))
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            raise ConnectionError("injected mid-frame disconnect")
        sock.sendall(bytes(frame))

    # -- synchronous calls -----------------------------------------------------

    def results(self) -> dict:
        """Flush, then fetch a mid-stream results snapshot; returns
        ``{"report": RunReport, "serve": metadata}``."""
        self._check_open()
        return self._with_retry(lambda: self._call(wire.T_RESULTS))

    def checkpoint(self) -> dict:
        """Flush, then fetch a durable checkpoint of the served session
        (``{"checkpoint": bytes, "serve": metadata}``) — feed the bytes
        to :meth:`QueryEngine.resume`."""
        self._check_open()
        return self._with_retry(lambda: self._call(wire.T_CHECKPOINT))

    def close_session(self) -> dict:
        """Flush, finalize the served session, and return its final
        ``{"report": RunReport, "serve": metadata}``.  Idempotent: the
        server keeps the report, so a retry after a lost reply
        re-fetches it."""
        payload = self._with_retry(lambda: self._call(wire.T_CLOSE))
        self._closed_remote = True
        return payload

    def _call(self, ftype: int) -> dict:
        self._drive_all()
        self._require_sock().sendall(wire.pack_frame(ftype, {}))
        while True:
            rtype, payload = self._read_frame()
            if rtype == wire.T_RESULT:
                return payload
            if rtype == wire.T_READY:
                self._paused = False
                self.ready_events += 1
                continue
            if rtype == wire.T_ERROR:
                raise ClientError(f"server error: {payload.get('reason')}")
            raise ClientError(
                f"unexpected frame type {rtype} in reply to call")

    # -- teardown --------------------------------------------------------------

    def disconnect(self) -> None:
        """Drop the connection without touching the session (it stays
        live on the server for a later reconnect)."""
        self._drop_connection()

    def __enter__(self) -> "IngestClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.disconnect()


def stream_file(address: tuple[str, int] | str | Path,
                path: str | Path, session: str = "default",
                batch_size: int = 4096, **kwargs: Any) -> dict:
    """Convenience: replay a CSV observation trace through a client
    (connect → send in ``batch_size`` chunks → close); returns the
    final close payload."""
    from repro.traffic.trace_io import read_csv

    records = read_csv(path)
    client = IngestClient(address, session, **kwargs)
    client.connect()
    try:
        for start in range(0, len(records), batch_size):
            client.send(records[start:start + batch_size])
        return client.close_session()
    finally:
        client.disconnect()
