"""The programmable key-value store: split cache/backing design (§3.2).

:mod:`.cache` — n×m bucketed LRU SRAM cache (Fig. 4);
:mod:`.vector_cache` — array-native replacement-policy simulator
(the vector engine behind the Fig. 5/6 sweeps);
:mod:`.backing` — DRAM store with merge / value-list semantics;
:mod:`.split` — the combined engine for one ``GROUPBY`` stage (Fig. 3);
:mod:`.vector_store` — the schedule-driven batch counterpart of
:mod:`.split` (bit-identical, array-native).
"""

from .backing import BackingStore, KeyEntry
from .sketch import CountMinSketch, SketchGeometry
from .cache import (
    CacheGeometry,
    CacheStats,
    Entry,
    KeyValueCache,
    mix_key,
    simulate_eviction_count,
    splitmix64,
)
from .split import CacheValue, SplitKeyValueStore
from .vector_cache import (
    VectorCacheSim,
    mix_key_array,
    simulate_eviction_count_vector,
    splitmix64_array,
    window_validity_vector,
)
from .vector_store import VectorSplitStore

__all__ = [
    "BackingStore",
    "CacheGeometry",
    "CacheStats",
    "CacheValue",
    "CountMinSketch",
    "SketchGeometry",
    "Entry",
    "KeyEntry",
    "KeyValueCache",
    "SplitKeyValueStore",
    "VectorCacheSim",
    "VectorSplitStore",
    "mix_key",
    "mix_key_array",
    "simulate_eviction_count",
    "simulate_eviction_count_vector",
    "splitmix64",
    "splitmix64_array",
    "window_validity_vector",
]
