"""Command-line interface: ``python -m repro <command>``.

Commands:

``run``       Compile a query and run it over a trace file (CSV/NPZ),
              printing the result table (and optionally checking it
              against the exact interpreter).
``plan``      Show the compiled switch configuration for a query.
``generate``  Produce a workload trace file (caida / datacenter /
              incast).
``sweep``     Run the Fig. 5 eviction study or the Fig. 6 accuracy
              study over the synthetic CAIDA-like trace.  ``--engine``
              picks the cache simulator (vector / row, identical
              numbers) and ``--sweep-workers N`` fans the sweep grid
              across N worker processes.
``serve``     Run the live ingest service: a localhost socket front
              end with per-session backpressure, admission control,
              optional load shedding, auto-checkpointing, and graceful
              drain on SIGTERM (plus an optional trace-file tailer).
``catalog``   List the Fig. 2 catalog, or show one entry's source.
``lint``      Compile-time deployability analysis: run the static
              analyzer over one query (or the whole catalog with
              ``--catalog``) and print the diagnostics report —
              mergeability/shardability, engine/session compatibility,
              int64-overflow bounds, §4 SRAM feasibility, dead stages
              and unused trace columns — with stable ``RPR-*`` codes
              (see ``DIAGNOSTICS.md``).  ``--json`` emits a
              machine-readable report; exit status 1 when any hard
              error is found (the CI gate).
``check``     Concurrency & resource-safety static analysis over the
              runtime's *own* Python source: AST/CFG checkers for
              event-loop blocking, resource lifecycles, checkpoint
              purity, exception discipline, and determinism, with
              stable ``RPR-Cxxx`` codes.  ``--json`` for CI; exit
              status 1 when any finding survives suppression review.

Examples::

    python -m repro generate datacenter --out /tmp/dc.npz --flows 300
    python -m repro run --query "SELECT COUNT GROUPBY srcip" \
        --trace /tmp/dc.npz --cache-pairs 4096 --ways 8
    python -m repro run --catalog per_flow_loss_rate --trace /tmp/dc.npz
    python -m repro plan --catalog latency_ewma
    python -m repro sweep fig5 --scale 0.00390625 --sweep-workers 4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.errors import QueryError, SessionError
from repro.queries.catalog import ALL_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine


def _parse_params(pairs: list[str]) -> dict[str, float]:
    params: dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects name=value, got {pair!r}")
        name, _, raw = pair.partition("=")
        value = float(raw)
        params[name] = int(value) if value.is_integer() else value
    return params


def _load_trace(path: str):
    from repro.traffic.trace_io import read_csv, read_npz

    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return read_csv(path)
    if suffix == ".npz":
        return read_npz(path)
    raise SystemExit(f"unsupported trace format {suffix!r} (use .csv or .npz)")


def _query_source(args: argparse.Namespace) -> tuple[str, dict[str, float]]:
    defaults: dict[str, float] = {}
    if args.catalog:
        entry = ALL_QUERIES.get(args.catalog)
        if entry is None:
            raise SystemExit(
                f"unknown catalog query {args.catalog!r}; "
                f"try: {', '.join(ALL_QUERIES)}")
        source = entry.source
        defaults = dict(entry.default_params)
    elif args.query_file:
        source = Path(args.query_file).read_text()
    elif args.query:
        source = args.query
    else:
        raise SystemExit("supply --query, --query-file, or --catalog")
    return source, defaults


def _positive_window(raw: str) -> int:
    """argparse type for ``--window``: sessions require a positive
    window, so reject 0/negative at parse time with a clear message
    instead of surfacing a deep store error mid-run."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer number of accesses, got {raw!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of accesses, got {value}")
    return value


def _positive_shards(raw: str) -> int:
    """argparse type for ``--shards``: a positive worker count."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {raw!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive worker count, got {value}")
    return value


def _geometry(args: argparse.Namespace) -> CacheGeometry:
    if args.ways == 0:
        return CacheGeometry.fully_associative(args.cache_pairs)
    if args.ways == 1:
        return CacheGeometry.hash_table(args.cache_pairs)
    return CacheGeometry.set_associative(args.cache_pairs, ways=args.ways)


def _add_query_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--query", help="query text")
    parser.add_argument("--query-file", help="file containing query text")
    parser.add_argument("--catalog", help="name of a Fig. 2 catalog query")
    parser.add_argument("--param", action="append", default=[],
                        metavar="NAME=VALUE", help="query parameter binding")
    parser.add_argument("--cache-pairs", type=int, default=1 << 12,
                        help="cache capacity in key-value pairs")
    parser.add_argument("--ways", type=int, default=8,
                        help="associativity (0=fully associative, 1=hash table)")
    parser.add_argument("--policy", default="lru",
                        choices=("lru", "fifo", "random"))
    parser.add_argument("--exact-history", action="store_true",
                        help="enable the exact-history merge extension")
    parser.add_argument("--refresh", type=int, default=None, metavar="N",
                        help="push cache values to the backing store every N packets")
    parser.add_argument("--window", type=_positive_window, default=None,
                        metavar="N",
                        help="stream through a windowed telemetry session: "
                             "the vector split store executes its schedule "
                             "every N accesses with carried state (bounded "
                             "memory, bit-identical results)")
    parser.add_argument("--shards", type=_positive_shards, default=None,
                        metavar="N",
                        help="hash-partitioned multi-core execution: fan "
                             "each GROUPBY stage out to N worker processes "
                             "and combine their stores via the synthesized "
                             "merges (bit-identical results; incompatible "
                             "with --engine row and --refresh)")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "vector", "row"),
                        help="exact-evaluation engine: vectorized batch "
                             "executor, row interpreter, or auto (vector "
                             "for columnar traces)")


def _slice_table(table, lo: int, hi: int):
    from repro.network.records import ObservationTable

    if isinstance(table, ObservationTable) and table.is_columnar:
        return ObservationTable.from_arrays(
            {name: col[lo:hi] for name, col in table.columns().items()})
    records = table.records if isinstance(table, ObservationTable) else table
    return list(records[lo:hi])


def cmd_run(args: argparse.Namespace) -> int:
    source, params = _query_source(args)
    params.update(_parse_params(args.param))
    table = _load_trace(args.trace)
    engine = QueryEngine(source, params=params, geometry=_geometry(args),
                         policy=args.policy, exact_history=args.exact_history,
                         refresh_interval=args.refresh, engine=args.engine)
    # The table is passed whole (not .records) so columnar traces take
    # the batch pipeline / vectorized-executor path end to end; every
    # run is one TelemetrySession (--window sets the streaming window,
    # --shards the multi-core fan-out).  --resume-from restores a
    # checkpointed session and skips the trace prefix it already saw;
    # --checkpoint-to saves one for a later resume.
    if args.checkpoint_every and not args.checkpoint_to:
        raise SystemExit("--checkpoint-every requires --checkpoint-to")
    if args.resume_from:
        session = engine.resume(Path(args.resume_from).read_bytes())
        skip = session.packets_ingested
        print(f"resumed session from {args.resume_from}: "
              f"skipping {skip} already-ingested packets", file=sys.stderr)
    else:
        session = engine.open(window=args.window, shards=args.shards)
        skip = 0
    total = len(table)
    if skip > total:
        raise SystemExit(
            f"checkpoint has already ingested {skip} packets but the trace "
            f"holds only {total} — resume with the original trace")
    if args.checkpoint_every:
        for lo in range(skip, total, args.checkpoint_every):
            session.ingest(_slice_table(table, lo, min(lo + args.checkpoint_every, total)))
            Path(args.checkpoint_to).write_bytes(session.checkpoint())
    else:
        if skip < total:
            session.ingest(table if skip == 0 else _slice_table(table, skip, total))
        if args.checkpoint_to:
            Path(args.checkpoint_to).write_bytes(session.checkpoint())
    report = session.close(include_invalid=args.include_invalid)
    if args.check:
        report.ground_truth = engine.run_exact(table)

    result = report.result
    columns = list(result.schema.column_names())
    rows = [[row.get(c, "") for c in columns] for row in result.rows[:args.limit]]
    print(format_table(columns, rows,
                       title=f"result: {report.result_name} "
                             f"({len(result)} rows, showing {len(rows)})"))
    for name, stats in report.cache_stats.items():
        print(f"\n[{name}] cache: {stats.accesses} accesses, "
              f"{stats.evictions} evictions "
              f"({100 * stats.eviction_fraction:.2f}%), "
              f"{report.backing_writes[name]} backing-store writes, "
              f"accuracy {100 * report.accuracy[name]:.1f}%")
    if args.check:
        from repro.telemetry.results import compare_tables
        truth = report.ground_truth[report.result_name]
        if result.schema.keyed and truth.schema.keyed:
            diff = compare_tables(result, truth, rel_tol=1e-6)
            print(f"\nvs exact interpreter: {diff.describe()}")
            return 0 if diff.exact else 1
        print(f"\nvs exact interpreter: {len(result)} vs {len(truth)} rows")
        return 0 if len(result) == len(truth) else 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    source, params = _query_source(args)
    params.update(_parse_params(args.param))
    engine = QueryEngine(source, params=params, geometry=_geometry(args),
                         policy=args.policy, exact_history=args.exact_history,
                         refresh_interval=args.refresh, engine=args.engine)
    server = engine.serve(
        host=args.host, port=args.port, unix_path=args.unix_socket,
        window=args.window, shards=args.shards,
        max_sessions=args.max_sessions,
        max_inflight_bytes=args.max_inflight_bytes,
        queue_high_bytes=args.queue_high_bytes,
        shed=args.shed, idle_timeout=args.idle_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_batches=args.checkpoint_every_batches)
    if args.tail:
        server.attach_tailer(args.tail, session=args.tail_session)
    shown = args.unix_socket or f"{args.host}:{args.port}"
    print(f"ingest service listening on {shown} "
          f"(SIGTERM/SIGINT drains gracefully)", file=sys.stderr)
    # run_forever installs the SIGTERM/SIGINT drain handler: finish
    # open windows, checkpoint each session, close, and report.
    report = server.run_forever()
    print(f"drained ingest service on {shown}", file=sys.stderr)
    print(json.dumps(report, indent=2, default=str))
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.telemetry.checkpoint import describe_checkpoint

    info = describe_checkpoint(Path(args.snapshot).read_bytes())
    width = max(len(key) for key in info)
    for key, value in info.items():
        if value is not None:
            print(f"{key:<{width}}  {value}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    source, _ = _query_source(args)
    engine = QueryEngine(source, params=_parse_params(args.param) or None,
                         exact_history=args.exact_history)
    print(engine.describe_plan())
    info = engine.info()
    if info.params:
        print(f"\nparameters to bind at run time: {sorted(info.params)}")
    for name, linear in info.linear_by_fold.items():
        verdict = "linear in state (mergeable)" if linear else \
            "NOT linear in state (value-list fallback)"
        print(f"{name}: {verdict}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.traffic.trace_io import write_csv, write_npz

    if args.kind == "caida":
        from repro.traffic.caida import CaidaTraceConfig, generate_caida_like
        table = generate_caida_like(CaidaTraceConfig(scale=args.scale,
                                                     seed=args.seed))
    elif args.kind == "datacenter":
        from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload
        table = DatacenterWorkload(DatacenterConfig(
            n_flows=args.flows, duration_ns=int(args.duration_ms * 1e6),
            seed=args.seed)).observation_table()
    else:  # incast
        from repro.traffic.incast import IncastConfig, generate_incast
        result = generate_incast(IncastConfig(n_senders=args.senders,
                                              seed=args.seed))
        table = result.table
        print(f"incast ground truth: hotspot qid={result.hotspot_qid}, "
              f"{result.drops} drops")
    if args.anomalies:
        from repro.traffic.tcpgen import clean_sequence_table, inject_tcp_anomalies
        clean_sequence_table(table)
        counts = inject_tcp_anomalies(table)
        print(f"planted anomalies: {counts}")

    out = Path(args.out)
    if out.suffix.lower() == ".csv":
        write_csv(table, out)
    else:
        write_npz(table, out)
    print(f"wrote {len(table)} observations to {out}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_percent

    if args.figure == "fig5":
        from repro.analysis.eviction import run_eviction_sweep, shape_checks

        sweep = run_eviction_sweep(
            scale=args.scale, seed=args.seed, engine=args.engine,
            workers=args.sweep_workers, policy=args.policy)
        capacities = sorted({p.paper_pairs for p in sweep.points})
        geometries = ("hash_table", "8way", "fully_associative")
        rows = []
        for paper_pairs in capacities:
            row = [f"2^{paper_pairs.bit_length() - 1}"]
            for geometry in geometries:
                try:
                    point = sweep.point(geometry, paper_pairs)
                except KeyError:
                    row.append("-")
                    continue
                row.append(format_percent(point.eviction_fraction))
            rows.append(row)
        print(format_table(
            ["pairs", "hash table", "8-way", "fully assoc"], rows,
            title=f"Fig. 5 — evictions as % of packets (scale "
                  f"{sweep.scale:.4g}: {sweep.points[0].packets} pkts, "
                  f"{sweep.points[0].flows} flows)"))
        problems = shape_checks(sweep)
    else:
        from repro.analysis.accuracy import run_accuracy_sweep, shape_checks
        from repro.analysis.eviction import PAIR_BITS

        sweep = run_accuracy_sweep(scale=args.scale, seed=args.seed,
                                   engine=args.engine,
                                   workers=args.sweep_workers)
        capacities = sorted({p.paper_pairs for p in sweep.points})
        windows = ("1min", "3min", "5min")
        rows = []
        for paper_pairs in capacities:
            row = [f"{paper_pairs * PAIR_BITS / (1 << 20):.0f}"]
            for window in windows:
                match = [p for p in sweep.points
                         if p.window == window and p.paper_pairs == paper_pairs]
                row.append(format_percent(match[0].accuracy, digits=1)
                           if match else "-")
            rows.append(row)
        print(format_table(
            ["Mbit", "1 min", "3 min", "5 min"], rows,
            title=f"Fig. 6 — accuracy (% valid keys), 8-way cache "
                  f"(scale {sweep.scale:.4g})"))
        problems = shape_checks(sweep)
    print(f"\nshape checks: {problems or 'all hold'}")
    return 0 if not problems else 1


def _lint_bounds(args: argparse.Namespace):
    """Trace bounds for the overflow analysis: measured from a real
    trace when ``--trace`` is given, else from ``--records`` /
    ``--max-field``."""
    from repro.core.analyze import TraceBounds

    if args.trace:
        table = _load_trace(args.trace)
        magnitudes: dict[str, float] = {}
        if getattr(table, "is_columnar", False):
            for name, col in table.columns().items():
                finite = col[~_np_isinf(col)] if col.dtype.kind == "f" else col
                magnitudes[name] = float(abs(finite).max()) if len(finite) else 0.0
        return TraceBounds(records=len(table), field_magnitude=magnitudes)
    return TraceBounds(records=args.records, field_magnitude=args.max_field)


def _np_isinf(col):
    import numpy as np

    return np.isinf(col)


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import deployability_table

    if getattr(args, "query_opt", None) and not args.query:
        args.query = args.query_opt
    if args.catalog == "__all__":
        targets = [(name, entry.source, dict(entry.default_params))
                   for name, entry in ALL_QUERIES.items()]
    else:
        source, defaults = _query_source(args)
        targets = [(args.catalog or "query", source, defaults)]

    cli_params = _parse_params(args.param)
    bounds = _lint_bounds(args)
    analyses = {}
    for name, source, params in targets:
        params.update(cli_params)
        engine = QueryEngine(
            source, params=params, geometry=_geometry(args),
            policy=args.policy, exact_history=args.exact_history,
            refresh_interval=args.refresh, engine=args.engine)
        analyses[name] = engine.analyze(
            window=args.window, shards=args.shards, exact=args.exact,
            trace_bounds=bounds, area_budget=args.area_budget)
    total_errors = sum(len(a.report.errors) for a in analyses.values())

    if args.json:
        payload = {
            "errors": total_errors,
            "queries": {
                name: {
                    "report": a.report.to_json(),
                    "stages": [{
                        "query": s.query_name,
                        "mergeable": s.mergeable,
                        "shardable": s.shardable,
                        "serialize_cause": s.serialize_cause,
                        "pair_bits": s.pair_bits,
                        "n_pairs": s.n_pairs,
                        "total_mbit": s.total_mbit,
                        "area_fraction": s.area_fraction,
                    } for s in a.stages],
                    "dead_stages": list(a.dead_stages),
                    "unused_fields": list(a.unused_fields),
                } for name, a in analyses.items()
            },
        }
        print(json.dumps(payload, indent=2))
        return 1 if total_errors else 0

    if len(analyses) > 1:
        print(deployability_table(analyses))
        print()
    for name, analysis in analyses.items():
        print(f"== {name} ==")
        print(analysis.report.format())
        print()
    verdict = ("DEPLOYABLE as configured" if total_errors == 0
               else f"NOT DEPLOYABLE: {total_errors} hard error(s)")
    print(verdict)
    return 1 if total_errors else 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.static import check_paths, iter_rules

    if args.rules:
        rows = [[r["code"], r["slug"], r["checker"], r["scope"]]
                for r in iter_rules()]
        print(format_table(["code", "slug", "checker", "scope"], rows,
                           title="repro check rules"))
        return 0
    paths = args.paths or [str(Path(__file__).parent)]
    select = None
    if args.select:
        select = {c.strip() for c in args.select.split(",") if c.strip()}
    report = check_paths(paths, select=select)
    if args.json:
        print(report.dumps())
    else:
        print(report.format())
    return 1 if report.has_findings else 0


def cmd_catalog(args: argparse.Namespace) -> int:
    if args.show:
        entry = ALL_QUERIES.get(args.show)
        if entry is None:
            raise SystemExit(f"unknown catalog query {args.show!r}")
        print(f"# {entry.description}")
        print(f"# linear in state: {entry.linear_in_state}; "
              f"default params: {entry.default_params}")
        print(entry.source.strip())
        return 0
    rows = [[e.name, "yes" if e.linear_in_state else "no", e.description]
            for e in ALL_QUERIES.values()]
    print(format_table(["name", "linear?", "description"], rows,
                       title="query catalog (Fig. 2 + §2 examples)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Performance-query system from 'Hardware-Software "
                    "Co-Design for Network Performance Measurement' "
                    "(HotNets 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a query over a trace file")
    _add_query_args(run_p)
    run_p.add_argument("--trace", required=True, help="trace file (.csv/.npz)")
    run_p.add_argument("--limit", type=int, default=20,
                       help="max result rows to print")
    run_p.add_argument("--include-invalid", action="store_true",
                       help="include invalid (multi-epoch) keys in results")
    run_p.add_argument("--check", action="store_true",
                       help="verify against the exact interpreter")
    run_p.add_argument("--checkpoint-to", metavar="PATH",
                       help="write a durable session checkpoint to PATH "
                            "(after ingest, or per batch with "
                            "--checkpoint-every); resume later with "
                            "--resume-from")
    run_p.add_argument("--checkpoint-every", type=_positive_window,
                       default=None, metavar="N",
                       help="ingest the trace in batches of N packets and "
                            "rewrite --checkpoint-to after each batch, so a "
                            "crash loses at most one batch of work")
    run_p.add_argument("--resume-from", metavar="PATH",
                       help="restore the session from a checkpoint file and "
                            "skip the trace prefix it already ingested "
                            "(bit-identical to an uninterrupted run)")
    run_p.set_defaults(func=cmd_run)

    plan_p = sub.add_parser("plan", help="show the compiled switch config")
    _add_query_args(plan_p)
    plan_p.set_defaults(func=cmd_plan)

    gen_p = sub.add_parser("generate", help="generate a workload trace")
    gen_p.add_argument("kind", choices=("caida", "datacenter", "incast"))
    gen_p.add_argument("--out", required=True, help="output file (.csv/.npz)")
    gen_p.add_argument("--scale", type=float, default=1 / 1024,
                       help="caida: scale relative to the paper's trace")
    gen_p.add_argument("--flows", type=int, default=300,
                       help="datacenter: number of flows")
    gen_p.add_argument("--duration-ms", type=float, default=100.0,
                       help="datacenter: trace duration")
    gen_p.add_argument("--senders", type=int, default=24,
                       help="incast: number of synchronized senders")
    gen_p.add_argument("--seed", type=int, default=1)
    gen_p.add_argument("--anomalies", action="store_true",
                       help="plant TCP sequence anomalies")
    gen_p.set_defaults(func=cmd_generate)

    sweep_p = sub.add_parser(
        "sweep", help="run the Fig. 5/6 cache-design sweeps")
    sweep_p.add_argument("figure", choices=("fig5", "fig6"),
                         help="fig5: eviction rates; fig6: accuracy")
    sweep_p.add_argument("--scale", type=float, default=1 / 256,
                         help="trace scale relative to the paper's 157M pkts")
    sweep_p.add_argument("--seed", type=int, default=2016_04)
    sweep_p.add_argument("--engine", default="auto",
                         choices=("auto", "vector", "row"),
                         help="cache simulator: array-native vector engine, "
                              "per-access row reference, or auto")
    sweep_p.add_argument("--sweep-workers", type=int, default=0, metavar="N",
                         help="fan the sweep grid across N worker processes "
                              "(0 = serial)")
    sweep_p.add_argument("--policy", default="lru",
                         choices=("lru", "fifo", "random"),
                         help="fig5 only: eviction policy to sweep")
    sweep_p.set_defaults(func=cmd_sweep)

    serve_p = sub.add_parser(
        "serve", help="run the live ingest service (socket front end)")
    _add_query_args(serve_p)
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="TCP listen host (loopback only by design)")
    serve_p.add_argument("--port", type=int, default=9016,
                         help="TCP listen port")
    serve_p.add_argument("--unix-socket", metavar="PATH", default=None,
                         help="listen on a UNIX socket instead of TCP")
    serve_p.add_argument("--max-sessions", type=int, default=8,
                         help="admission control: max live sessions")
    serve_p.add_argument("--max-inflight-bytes", type=int,
                         default=256 << 20,
                         help="admission control: max queued batch bytes "
                              "across all sessions")
    serve_p.add_argument("--queue-high-bytes", type=int, default=32 << 20,
                         help="per-session backpressure high watermark "
                              "(BUSY above, READY once drained to 1/4)")
    serve_p.add_argument("--shed", action="store_true",
                         help="load-shedding mode: drop whole batches over "
                              "the watermark instead of backpressure, with "
                              "exact accounting in results metadata")
    serve_p.add_argument("--idle-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="close connections silent this long (the "
                              "session survives for a reconnect)")
    serve_p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="directory for per-session checkpoint files "
                              "(written on drain, and periodically with "
                              "--checkpoint-every-batches)")
    serve_p.add_argument("--checkpoint-every-batches", type=_positive_window,
                         default=None, metavar="N",
                         help="auto-checkpoint each session every N "
                              "ingested batches (requires --checkpoint-dir)")
    serve_p.add_argument("--tail", metavar="PATH", default=None,
                         help="also follow a growing CSV trace file into a "
                              "served session (survives truncation and "
                              "rotation)")
    serve_p.add_argument("--tail-session", default="tail",
                         help="session name the tailed file feeds")
    serve_p.set_defaults(func=cmd_serve)

    lint_p = sub.add_parser(
        "lint", help="static deployability analysis (no trace needed)")
    lint_p.add_argument("query", nargs="?", default=None,
                        help="query text to lint")
    lint_p.add_argument("--query", dest="query_opt", default=None,
                        help=argparse.SUPPRESS)  # parity with other commands
    lint_p.add_argument("--query-file", help="file containing query text")
    lint_p.add_argument("--catalog", nargs="?", const="__all__", default=None,
                        metavar="NAME",
                        help="lint one catalog query, or the whole Fig. 2 "
                             "catalog when no name is given")
    lint_p.add_argument("--param", action="append", default=[],
                        metavar="NAME=VALUE", help="query parameter binding")
    lint_p.add_argument("--cache-pairs", type=int, default=1 << 12,
                        help="cache capacity in key-value pairs")
    lint_p.add_argument("--ways", type=int, default=8,
                        help="associativity (0=fully associative, 1=hash table)")
    lint_p.add_argument("--policy", default="lru",
                        choices=("lru", "fifo", "random"))
    lint_p.add_argument("--exact-history", action="store_true",
                        help="enable the exact-history merge extension")
    lint_p.add_argument("--refresh", type=int, default=None, metavar="N",
                        help="intended refresh_interval= for the session")
    lint_p.add_argument("--engine", default="auto",
                        choices=("auto", "vector", "row"))
    # Plain ints (not the validating argparse types): lint's job is to
    # *report* an invalid knob as a diagnostic, not to refuse it.
    lint_p.add_argument("--window", type=int, default=None, metavar="N",
                        help="intended window= for the session")
    lint_p.add_argument("--shards", type=int, default=None, metavar="N",
                        help="intended shards= for the session")
    lint_p.add_argument("--exact", action="store_true",
                        help="intended exact= (software-only) session")
    lint_p.add_argument("--records", type=int, default=10_000_000,
                        metavar="N",
                        help="assumed trace length for the int64-overflow "
                             "analysis")
    lint_p.add_argument("--max-field", type=float, default=float(2 ** 32),
                        metavar="M",
                        help="assumed max |field value| for the overflow "
                             "analysis")
    lint_p.add_argument("--trace", default=None, metavar="PATH",
                        help="measure records/field bounds from a real "
                             "trace file instead of --records/--max-field")
    lint_p.add_argument("--area-budget", type=float, default=None,
                        help="max fraction of the die the §4 model may "
                             "spend on caches (default 0.25)")
    lint_p.add_argument("--json", action="store_true",
                        help="machine-readable report (the CI gate parses "
                             "this)")
    lint_p.set_defaults(func=cmd_lint)

    check_p = sub.add_parser(
        "check",
        help="concurrency & resource-safety static analysis over the "
             "runtime's own source (RPR-Cxxx codes)")
    check_p.add_argument("paths", nargs="*", metavar="PATH",
                         help="files or directories to analyze "
                              "(default: the installed repro package)")
    check_p.add_argument("--select", default=None, metavar="CODES",
                         help="comma-separated RPR-Cxxx codes to run "
                              "(default: all)")
    check_p.add_argument("--rules", action="store_true",
                         help="list every rule with its code, checker, "
                              "and scope, then exit")
    check_p.add_argument("--json", action="store_true",
                         help="machine-readable findings (the CI gate "
                              "parses this)")
    check_p.set_defaults(func=cmd_check)

    cat_p = sub.add_parser("catalog", help="list or show catalog queries")
    cat_p.add_argument("--show", help="print one query's source")
    cat_p.set_defaults(func=cmd_catalog)

    ckpt_p = sub.add_parser(
        "checkpoint", help="inspect a session checkpoint file")
    ckpt_p.add_argument("snapshot",
                        help="checkpoint written by run --checkpoint-to "
                             "or TelemetrySession.checkpoint()")
    ckpt_p.set_defaults(func=cmd_checkpoint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except QueryError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    except SessionError as exc:
        print(f"session error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
