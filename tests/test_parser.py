"""Parser unit tests: every Fig. 1 production plus error paths."""

import pytest

from repro.core.ast_nodes import (
    Assign,
    BinOp,
    Call,
    Dotted,
    If,
    JoinQuery,
    Name,
    Number,
    SelectQuery,
    Star,
    format_program,
    format_query,
)
from repro.core.errors import ParseError
from repro.core.parser import parse_expression, parse_program, parse_query


class TestSelectQueries:
    def test_plain_select(self):
        query = parse_query("SELECT srcip, qid FROM T WHERE tout - tin > 1ms")
        assert isinstance(query, SelectQuery)
        assert query.source == "T"
        assert query.groupby is None
        assert isinstance(query.where, BinOp) and query.where.op == ">"

    def test_select_star(self):
        query = parse_query("SELECT * FROM R1")
        assert isinstance(query.items, Star)

    def test_select_without_from_defaults_to_base(self):
        query = parse_query("SELECT srcip WHERE proto == 6")
        assert query.source is None

    def test_select_item_alias(self):
        query = parse_query("SELECT tout - tin AS delay FROM T")
        assert query.items[0].alias == "delay"

    def test_clause_order_is_free(self):
        a = parse_query("SELECT COUNT GROUPBY 5tuple WHERE proto == 6")
        b = parse_query("SELECT COUNT WHERE proto == 6 GROUPBY 5tuple")
        assert a == b

    def test_duplicate_where_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT srcip WHERE a == 1 WHERE b == 2")

    def test_duplicate_groupby_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT GROUPBY srcip GROUPBY dstip")


class TestGroupQueries:
    def test_groupby_keys(self):
        query = parse_query("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip")
        assert query.groupby == ("srcip", "dstip")

    def test_sugar_call_parsed_as_call(self):
        query = parse_query("SELECT SUM(pkt_len) GROUPBY srcip")
        assert isinstance(query.items[0].expr, Call)

    def test_bare_count_parsed_as_name(self):
        query = parse_query("SELECT COUNT GROUPBY srcip")
        assert query.items[0].expr == Name("COUNT")


class TestJoinQueries:
    def test_join_shape(self):
        query = parse_query("SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple")
        assert isinstance(query, JoinQuery)
        assert (query.left, query.right) == ("R1", "R2")
        assert query.on == ("5tuple",)

    def test_join_select_is_dotted_division(self):
        query = parse_query("SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple")
        expr = query.items[0].expr
        assert isinstance(expr, BinOp) and expr.op == "/"
        assert expr.left == Dotted("R2", "COUNT")

    def test_join_with_groupby_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT FROM R1 JOIN R2 ON srcip GROUPBY srcip")

    def test_join_multi_key(self):
        query = parse_query("SELECT R1.x FROM R1 JOIN R2 ON srcip, dstip")
        assert query.on == ("srcip", "dstip")


class TestFoldDefs:
    def test_inline_fold(self):
        program = parse_program(
            "def sumlen (result, (pkt_len)): result = result + pkt_len\n"
            "SELECT srcip, sumlen GROUPBY srcip"
        )
        fold = program.folds["sumlen"]
        assert fold.state_params == ("result",)
        assert fold.packet_params == ("pkt_len",)
        assert isinstance(fold.body[0], Assign)

    def test_block_fold_with_if(self):
        program = parse_program(
            "def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):\n"
            "    if lastseq + 1 != tcpseq:\n"
            "        oos_count = oos_count + 1\n"
            "    lastseq = tcpseq + payload_len\n"
            "SELECT 5tuple, outofseq GROUPBY 5tuple"
        )
        body = program.folds["outofseq"].body
        assert isinstance(body[0], If)
        assert body[0].orelse == ()
        assert isinstance(body[1], Assign)

    def test_if_else_blocks(self):
        program = parse_program(
            "def f (s, x):\n"
            "    if x > 0:\n"
            "        s = s + 1\n"
            "    else:\n"
            "        s = s - 1\n"
            "SELECT srcip, f GROUPBY srcip"
        )
        stmt = program.folds["f"].body[0]
        assert isinstance(stmt, If) and len(stmt.orelse) == 1

    def test_inline_if_then_else(self):
        program = parse_program(
            "def f (s, x):\n"
            "    if x > 0 then s = s + 1 else s = s - 1\n"
            "SELECT srcip, f GROUPBY srcip"
        )
        stmt = program.folds["f"].body[0]
        assert isinstance(stmt, If) and len(stmt.then) == 1 and len(stmt.orelse) == 1

    def test_nested_if(self):
        program = parse_program(
            "def f ((a, b), (x, y)):\n"
            "    if x > 0:\n"
            "        if y > 0:\n"
            "            a = a + 1\n"
            "        b = b + 1\n"
            "    a = a + y\n"
            "SELECT srcip, f GROUPBY srcip"
        )
        outer = program.folds["f"].body[0]
        assert isinstance(outer.then[0], If)

    def test_duplicate_fold_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "def f (s, x): s = s + x\n"
                "def f (s, x): s = s + 1\n"
                "SELECT srcip, f GROUPBY srcip"
            )


class TestPrograms:
    def test_named_queries_and_result(self):
        program = parse_program(
            "R1 = SELECT COUNT GROUPBY 5tuple\n"
            "R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity\n"
            "R3 = SELECT R2.COUNT/R1.COUNT FROM R1 JOIN R2 ON 5tuple\n"
        )
        assert list(program.queries) == ["R1", "R2", "R3"]
        assert program.result == "R3"

    def test_anonymous_final_query(self):
        program = parse_program("SELECT COUNT GROUPBY srcip")
        assert program.result == "__result__"

    def test_multiline_query_continuation(self):
        program = parse_program(
            "R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple\n"
            "    WHERE lat > L\n"
        )
        query = program.queries["R2"]
        assert query.where is not None

    def test_duplicate_query_name_rejected(self):
        with pytest.raises(ParseError):
            parse_program("R1 = SELECT COUNT GROUPBY srcip\n"
                          "R1 = SELECT COUNT GROUPBY dstip")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_fold_only_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("def f (s, x): s = s + x")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert expr.op == "+" and expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*" and expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expression("-a + b")
        assert expr.op == "+"

    def test_boolean_precedence(self):
        expr = parse_expression("a == 1 and b == 2 or c == 3")
        assert expr.op == "or" and expr.left.op == "and"

    def test_not(self):
        expr = parse_expression("not a == 1")
        assert expr.op == "not"

    def test_call_args(self):
        expr = parse_expression("max(a, b)")
        assert isinstance(expr, Call) and len(expr.args) == 2

    def test_number(self):
        assert parse_expression("3") == Number(3)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b c")


class TestRoundTrip:
    SOURCES = [
        "SELECT srcip, qid FROM T WHERE tout - tin > 1000000",
        "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
        "R1 = SELECT COUNT GROUPBY 5tuple\n"
        "R2 = SELECT R1.COUNT FROM R1 JOIN R1 ON 5tuple",
        "def ewma (lat_est, (tin, tout)):\n"
        "    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)\n"
        "SELECT 5tuple, ewma GROUPBY 5tuple",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_format_then_reparse_is_identity(self, source):
        program = parse_program(source)
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert reparsed == program

    def test_format_query_text_mentions_clauses(self):
        query = parse_query("SELECT COUNT GROUPBY srcip WHERE proto == 6")
        text = format_query(query)
        assert "GROUPBY srcip" in text and "WHERE" in text
