"""Network simulator tests: routing, per-queue records, drops, paths."""

import math


from repro.network.simulator import NetworkSimulator
from repro.network.topology import LinkSpec, leaf_spine, linear_chain, single_switch
from repro.traffic.trace_io import validate_table


class TestSingleSwitch:
    def test_one_packet_one_record(self):
        sim = NetworkSimulator(single_switch(2))
        sim.inject(time_ns=0, src="h0", dst="h1", pkt_len=1500)
        table = sim.run()
        assert len(table) == 1           # one switch queue traversed
        record = table[0]
        assert record.tout > record.tin
        assert sim.delivered == 1

    def test_addresses_assigned(self):
        sim = NetworkSimulator(single_switch(2))
        sim.inject(time_ns=0, src="h0", dst="h1")
        table = sim.run()
        assert table[0].srcip == sim.host_ip("h0")
        assert table[0].dstip == sim.host_ip("h1")

    def test_headers_carried(self):
        sim = NetworkSimulator(single_switch(2))
        sim.inject(time_ns=0, src="h0", dst="h1", srcport=1234, dstport=80,
                   proto=17, tcpseq=999)
        record = sim.run()[0]
        assert (record.srcport, record.dstport, record.proto, record.tcpseq) == \
            (1234, 80, 17, 999)


class TestMultiHop:
    def test_chain_produces_record_per_queue(self):
        sim = NetworkSimulator(linear_chain(3))
        sim.inject(time_ns=0, src="h0", dst="h1", pkt_len=1000)
        table = sim.run()
        assert len(table) == 3
        qids = {r.qid for r in table}
        assert len(qids) == 3            # footnote 2: one tuple per queue

    def test_timestamps_advance_along_path(self):
        sim = NetworkSimulator(linear_chain(3))
        sim.inject(time_ns=0, src="h0", dst="h1", pkt_len=1000)
        table = sim.run()
        records = sorted(table, key=lambda r: r.tin)
        for earlier, later in zip(records, records[1:]):
            assert later.tin >= earlier.tout

    def test_pkt_path_consistent_and_opaque(self):
        sim = NetworkSimulator(linear_chain(2))
        sim.inject(time_ns=0, src="h0", dst="h1")
        sim.inject(time_ns=10_000_000, src="h0", dst="h1")
        table = sim.run()
        paths = {r.pkt_path for r in table}
        assert len(paths) == 1           # same route, same path id

    def test_different_routes_different_paths(self):
        sim = NetworkSimulator(leaf_spine(2, 1, 1))
        sim.inject(time_ns=0, src="h0_0", dst="h1_0")  # cross-leaf
        sim.inject(time_ns=0, src="h0_0", dst="h0_0")  # degenerate same-host
        table = sim.run()
        assert len({r.pkt_path for r in table}) >= 1


class TestDrops:
    def test_overload_drops_with_infinite_tout(self):
        topo = single_switch(3, LinkSpec(rate_gbps=1.0, buffer_packets=4))
        sim = NetworkSimulator(topo)
        for i in range(200):
            sim.inject(time_ns=i, src="h1", dst="h0", pkt_len=1500)
            sim.inject(time_ns=i, src="h2", dst="h0", pkt_len=1500)
        table = sim.run()
        drops = [r for r in table if math.isinf(r.tout)]
        assert drops and sim.dropped == len(drops)
        for record in drops:
            assert record.qin >= 4

    def test_dropped_packet_stops_travelling(self):
        topo = linear_chain(2, LinkSpec(rate_gbps=1.0, buffer_packets=1))
        sim = NetworkSimulator(topo)
        for i in range(100):
            sim.inject(time_ns=i, src="h0", dst="h1", pkt_len=1500)
        table = sim.run()
        assert sim.delivered + sim.dropped == 100


class TestTableQuality:
    def test_observation_table_validates(self):
        sim = NetworkSimulator(leaf_spine(2, 2, 2))
        hosts = [f"h{l}_{h}" for l in range(2) for h in range(2)]
        t = 0
        for i in range(300):
            t += 1000
            src = hosts[i % 4]
            dst = hosts[(i + 1) % 4]
            sim.inject(time_ns=t, src=src, dst=dst, pkt_len=500 + i % 1000)
        table = sim.run()
        assert validate_table(table) == []

    def test_pkt_ids_unique_per_packet(self):
        sim = NetworkSimulator(linear_chain(2))
        sim.inject(time_ns=0, src="h0", dst="h1")
        sim.inject(time_ns=5_000_000, src="h0", dst="h1")
        table = sim.run()
        by_pkt = {}
        for record in table:
            by_pkt.setdefault(record.pkt_id, []).append(record)
        assert len(by_pkt) == 2
        for records in by_pkt.values():
            assert len(records) == 2     # one record per hop
