"""Network substrate: queues, topologies, and the event-driven
simulator that produces the paper's packet-observation table (§2).
"""

from .queues import Departure, Drop, OutputQueue
from .records import ObservationTable, PacketRecord
from .simulator import NetworkSimulator, SimPacket
from .topology import LinkSpec, Topology, leaf_spine, linear_chain, single_switch

__all__ = [
    "Departure",
    "Drop",
    "LinkSpec",
    "NetworkSimulator",
    "ObservationTable",
    "OutputQueue",
    "PacketRecord",
    "SimPacket",
    "Topology",
    "leaf_spine",
    "linear_chain",
    "single_switch",
]
