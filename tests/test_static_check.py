"""End-to-end tests for the ``repro check`` static-analysis framework.

Three layers of assurance:

* the **fixture corpus** (``tests/static_fixtures/``) exercises every
  ``RPR-Cxxx`` code positively (a ``bad_*`` file the checker must
  flag, with exact per-code counts) and negatively (a ``clean_*`` twin
  it must pass) — a silent regression in any rule fails here;
* the **shipped tree** must come back with zero findings and zero
  suppression comments — the analyzer gate the CI job enforces;
* the **rule table** must stay in sync with ``DIAGNOSTICS.md`` and the
  diagnostics registry, so every code a checker can emit is documented.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis.static import check_paths, check_source, iter_rules
from repro.cli import main as cli_main
from repro.telemetry.diagnostics import CODES

TESTS = Path(__file__).resolve().parent
FIXTURES = TESTS / "static_fixtures"
SRC = TESTS.parent / "src" / "repro"

#: fixture file -> exact expected per-code finding counts (the select
#: passed to the checker is the file's family, so unrelated rules and
#: the determinism scope never interfere).
EXPECTED_BAD = {
    "bad_blocking.py": {"RPR-C101": 3, "RPR-C102": 1},
    "bad_lifecycle.py": {"RPR-C201": 2, "RPR-C202": 1},
    "bad_purity.py": {"RPR-C301": 2, "RPR-C302": 2},
    "bad_exceptions.py": {"RPR-C401": 1, "RPR-C402": 3},
    "bad_determinism.py": {"RPR-C501": 1, "RPR-C502": 1,
                           "RPR-C503": 1, "RPR-C504": 1},
    "bad_suppression.py": {"RPR-C001": 4},
}

#: clean twin -> the family select it must survive untouched.
EXPECTED_CLEAN = {
    "clean_blocking.py": ("RPR-C101", "RPR-C102"),
    "clean_lifecycle.py": ("RPR-C201", "RPR-C202"),
    "clean_purity.py": ("RPR-C301", "RPR-C302"),
    "clean_exceptions.py": ("RPR-C401", "RPR-C402"),
    "clean_determinism.py": ("RPR-C501", "RPR-C502",
                             "RPR-C503", "RPR-C504"),
}


def _run_fixture(name: str, select) -> list:
    path = FIXTURES / name
    return check_source(path.read_text(), str(path), select=set(select),
                        ignore_scope=True)


class TestFixtureCorpus:
    def test_corpus_covers_every_check_code(self):
        check_codes = {c for c in CODES if c.startswith("RPR-C")}
        covered = {code for expected in EXPECTED_BAD.values()
                   for code in expected}
        assert covered == check_codes

    @pytest.mark.parametrize("name", sorted(EXPECTED_BAD))
    def test_bad_fixture_flagged_with_exact_codes(self, name):
        expected = EXPECTED_BAD[name]
        findings = _run_fixture(name, expected)
        assert Counter(f.code for f in findings) == Counter(expected), \
            "\n".join(f.format() for f in findings)

    @pytest.mark.parametrize("name", sorted(EXPECTED_CLEAN))
    def test_clean_fixture_passes(self, name):
        findings = _run_fixture(name, EXPECTED_CLEAN[name])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_findings_anchor_to_the_violating_line(self):
        findings = _run_fixture(
            "bad_determinism.py",
            ("RPR-C501", "RPR-C502", "RPR-C503", "RPR-C504"))
        assert {(f.code, f.line) for f in findings} == {
            ("RPR-C501", 9), ("RPR-C504", 10),
            ("RPR-C503", 11), ("RPR-C502", 12)}

    def test_findings_carry_fix_hints(self):
        findings = _run_fixture("bad_lifecycle.py",
                                ("RPR-C201", "RPR-C202"))
        assert findings and all(f.fix_hint for f in findings)
        assert all("fix:" in f.format() for f in findings)

    def test_wellformed_suppression_waives_and_is_counted(self):
        report = check_paths([FIXTURES / "clean_suppression.py"],
                             select={"RPR-C001", "RPR-C501"},
                             ignore_scope=True)
        assert not report.has_findings
        assert report.suppressed == 1

    def test_suppression_only_waives_the_named_code(self):
        src = ("import time\n\n\n"
               "def f():\n"
               "    return time.time()  # repro: allow[RPR-C502]\n")
        findings = check_source(src, "probe.py",
                                select={"RPR-C501", "RPR-C502"},
                                ignore_scope=True)
        assert [f.code for f in findings] == ["RPR-C501"]


class TestShippedTree:
    def test_zero_findings_on_shipped_tree(self):
        report = check_paths([SRC])
        assert not report.has_findings, report.format()
        assert report.files_checked > 70

    def test_zero_suppression_comments_in_shipped_tree(self):
        # the tokenizing scanner only sees real comments, so the
        # framework's own docstrings mentioning the syntax don't count
        from repro.analysis.static import ModuleContext

        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            module = ModuleContext(path, path.read_text())
            if module.allowed or module.suppression_findings:
                offenders.append(str(path))
        assert offenders == [], (
            "shipped modules must fix violations, not suppress them")


class TestRuleTable:
    def test_every_check_code_is_owned_or_framework_level(self):
        owned = {row["code"] for row in iter_rules()}
        check_codes = {c for c in CODES if c.startswith("RPR-C")}
        # RPR-C001 is emitted by the suppression scanner itself, not a
        # registered checker; every other C-code needs an owner.
        assert owned | {"RPR-C001"} == check_codes

    def test_rules_are_documented_in_diagnostics_md(self):
        table = (TESTS.parent / "DIAGNOSTICS.md").read_text()
        for code in sorted(c for c in CODES if c.startswith("RPR-C")):
            assert f"`{code}`" in table, f"{code} missing from " \
                                         f"DIAGNOSTICS.md"

    def test_rule_rows_are_complete(self):
        for row in iter_rules():
            assert row["code"] in CODES
            assert row["slug"] == CODES[row["code"]].slug
            assert row["checker"]
            assert row["scope"]


class TestCli:
    def test_check_exits_one_on_findings(self, capsys):
        rc = cli_main(["check", str(FIXTURES / "bad_exceptions.py")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPR-C401" in out and "RPR-C402" in out

    def test_check_exits_zero_on_clean_tree(self, capsys):
        rc = cli_main(["check", str(SRC / "analysis" / "static")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out

    def test_check_json_is_machine_readable(self, capsys):
        rc = cli_main(["check", "--json",
                       str(FIXTURES / "bad_exceptions.py")])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["errors"] == len(payload["findings"]) > 0
        assert {f["code"] for f in payload["findings"]} == {
            "RPR-C401", "RPR-C402"}

    def test_check_select_filters_codes(self, capsys):
        rc = cli_main(["check", "--select", "RPR-C401", "--json",
                       str(FIXTURES / "bad_exceptions.py")])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {f["code"] for f in payload["findings"]} == {"RPR-C401"}

    def test_check_rules_lists_every_owned_code(self, capsys):
        rc = cli_main(["check", "--rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for row in iter_rules():
            assert row["code"] in out
