"""The split key-value store: SRAM cache + DRAM backing store (Fig. 3).

This is the execution engine for one compiled ``GROUPBY`` stage.  Per
packet (§3.2):

1. extract the aggregation key from the parsed headers;
2. look the key up in the on-chip cache — a hit *updates* the value in
   place, a miss *initialises* a fresh value (one operation per clock
   cycle either way);
3. if the insertion evicted a resident key, hand the evicted key-value
   pair to the backing store, which merges it (linear-in-state folds)
   or appends a value segment (others).

Results are read from the *backing store* — the paper notes the correct
value for linear folds "only resides in the backing store and cannot be
read from the cache" — so :meth:`SplitKeyValueStore.finalize` flushes
the cache before :meth:`result_table` builds the output.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Iterable, Mapping

from repro.core.errors import CheckpointError, HardwareError
from repro.core.eval_expr import EvalContext, Numeric, evaluate
from repro.core.interpreter import ResultTable, Row
from repro.core.merge_synthesis import (
    AuxState,
    State,
    init_aux,
    note_post_prefix_state,
    update_aux,
)
from repro.core.plan import GroupByStage

from ..alu import compile_key_extractor, compile_update
from .backing import BackingStore
from .cache import CacheGeometry, Entry, KeyValueCache


@dataclass
class CacheValue:
    """Per-entry cache value: one state dict and one auxiliary-register
    dict per fold instance.

    ``dirty`` tracks whether the entry has absorbed any packet since it
    was last pushed to the backing store; clean entries are skipped on
    refresh/eviction/flush (their contribution is already merged, and
    pushing an all-initial value would add a spurious segment for
    non-mergeable folds).
    """

    states: dict[str, State]
    aux: dict[str, AuxState]
    dirty: bool = False


class SplitKeyValueStore:
    """Split cache/backing-store engine for one ``GROUPBY`` stage.

    Args:
        stage: Compiled stage (key layout, folds, merge specs).
        geometry: Cache geometry — capacity in key-value *pairs*.
        params: Query-parameter bindings, inlined into the ALU programs.
        policy: Cache eviction policy (paper: LRU).
        seed: Hash/RNG seed for reproducibility.
    """

    def __init__(
        self,
        stage: GroupByStage,
        geometry: CacheGeometry,
        params: Mapping[str, Numeric] | None = None,
        policy: str = "lru",
        seed: int = 0,
        refresh_interval: int | None = None,
    ):
        if refresh_interval is not None and refresh_interval <= 0:
            raise HardwareError("refresh_interval must be positive")
        self.stage = stage
        self.params = dict(params or {})
        self.refresh_interval = refresh_interval
        self._since_refresh = 0
        self.refreshes = 0
        self.cache: KeyValueCache[CacheValue] = KeyValueCache(
            geometry, policy=policy, seed=seed
        )
        self.backing = BackingStore(stage.folds, params=self.params)
        self._extract_key = compile_key_extractor(stage.key.fields)
        self._updates = {
            fold.column: compile_update(fold.alu.update_exprs, self.params)
            for fold in stage.folds
        }
        self._specs = {fold.column: fold.merge for fold in stage.folds}
        self._inits = {
            fold.column: fold.instance.initial_state() for fold in stage.folds
        }
        self._needs_aux = {
            column: (spec.strategy in ("scale", "matrix") or spec.exact_history)
            for column, spec in self._specs.items()
        }
        # Keys in first-access order (a key's first access is always a
        # miss, so recording on misses only keeps the hit path free of
        # bookkeeping).  This is the row order of :meth:`result_table`,
        # shared with the vectorized store, whose key factorization
        # produces exactly this first-occurrence order.
        self._seen: dict[Hashable, None] = {}
        self._finalized = False

    # -- per-packet path -----------------------------------------------------

    def process(self, record: object) -> None:
        """Run one (already filtered) packet through the store."""
        self.process_keyed(self._extract_key(record), record)

    def process_keyed(self, key: Hashable, record: object) -> None:
        """Run one packet whose aggregation key is already extracted —
        the batch path: the pipeline extracts key arrays per chunk, so
        per-packet work here is just the cache/store state machine."""
        if self._finalized:
            raise HardwareError("store already finalized")
        misses_before = self.cache.stats.misses
        entry, evicted = self.cache.access(key, self._fresh_value)
        if self.cache.stats.misses != misses_before:
            self._seen.setdefault(key)
        if evicted is not None:
            self._absorb(evicted)
        value = entry.value
        for column, update in self._updates.items():
            state = value.states[column]
            if self._needs_aux[column]:
                update_aux(self._specs[column], value.aux[column], state,
                           record, self.params)
            state.update(update(record, state))
            if self._specs[column].exact_history:
                note_post_prefix_state(self._specs[column], value.aux[column], state)
        value.dirty = True
        if self.refresh_interval is not None:
            self._since_refresh += 1
            if self._since_refresh >= self.refresh_interval:
                self.refresh()

    def _fresh_value(self) -> CacheValue:
        return CacheValue(
            states={c: dict(init) for c, init in self._inits.items()},
            aux={c: init_aux(spec) for c, spec in self._specs.items()},
        )

    def _absorb(self, entry: Entry[CacheValue]) -> None:
        if not entry.value.dirty:
            return
        self.backing.absorb(entry.key, entry.value.states, entry.value.aux)
        entry.value.dirty = False

    # -- periodic refresh (§3.2) -------------------------------------------------

    def refresh(self) -> None:
        """Push every resident entry's value to the backing store and
        reset it in place.

        §3.2: "keys can be periodically evicted to ensure the backing
        store is fresh, and monitoring applications can pull results
        from the backing store."  Resetting in place (state → initial,
        merge registers → identity) is observationally identical to
        evict-plus-immediate-reinsert but keeps the key resident, so
        the next packet still hits.

        For mergeable folds freshness is free of error; for
        non-mergeable folds each refresh starts a new value segment, so
        a refreshed key becomes *invalid* on its next push — intervals
        shorter than a key's lifetime trade validity for freshness.
        """
        self.refreshes += 1
        self._since_refresh = 0
        for entry in self.cache.entries():
            if not entry.value.dirty:
                continue
            self._absorb(entry)
            entry.value.states = {c: dict(init) for c, init in self._inits.items()}
            entry.value.aux = {c: init_aux(spec) for c, spec in self._specs.items()}

    # -- end of run -----------------------------------------------------------

    def finalize(self) -> None:
        """Flush the cache into the backing store (idempotent)."""
        if self._finalized:
            return
        for entry in self.cache.flush():
            self._absorb(entry)
        self._finalized = True

    def result_table(self, include_invalid: bool = False) -> ResultTable:
        """Materialise the stage output from the backing store.

        Rows for keys whose non-mergeable folds are invalid (multiple
        segments) are skipped unless ``include_invalid`` is set, in
        which case the *latest* segment is reported (it is correct over
        its own interval, §3.2).  Rows come out in first-access key
        order (the same order the reference interpreter produces).
        """
        self.finalize()
        return build_result_table(self.stage, self.backing, self._seen,
                                  self.params, include_invalid=include_invalid)

    def snapshot_backing(self) -> BackingStore:
        """A copy of the backing store with every resident *dirty*
        entry's value absorbed — the end-of-run backing state, computed
        without finalizing (streaming continues untouched).  The
        pipeline's mid-stream snapshot builds the result table,
        writes, and accuracy off this one copy."""
        snapshot = self.backing.clone()
        for entry in self.cache.entries():
            if entry.value.dirty:
                snapshot.absorb(entry.key, entry.value.states,
                                entry.value.aux)
        return snapshot

    # -- durable checkpoints -------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Plain-data snapshot of the full engine state: per-bucket
        entries *in replacement order* (the OrderedDict order is the
        LRU/FIFO state), counters (incl. the random policy's per-bucket
        eviction counts — its RNG state), the backing store, and the
        first-access key order.  The vectorized per-bucket victim draw
        blocks are a pure-function cache and are rebuilt on demand."""
        if self._finalized:
            raise CheckpointError("cannot checkpoint a finalized store")
        cache = self.cache
        backing = self.backing.clone()
        return {
            "kind": "row",
            "buckets": [
                (i, [(e.key,
                      {c: dict(s) for c, s in e.value.states.items()},
                      {c: _copy_row_aux(a) for c, a in e.value.aux.items()},
                      e.value.dirty)
                     for e in bucket.values()])
                for i, bucket in enumerate(cache._buckets) if bucket
            ],
            "stats": replace(cache.stats),
            "evict_counts": dict(cache._evict_counts),
            "backing_data": backing.data,
            "backing_writes": backing.writes,
            "seen": list(self._seen),
            "since_refresh": self._since_refresh,
            "refreshes": self.refreshes,
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`checkpoint_state` payload into this (freshly
        constructed) store.  Takes ownership of the payload's
        containers."""
        if state.get("kind") != "row":
            raise CheckpointError(
                f"store state mismatch: snapshot carries "
                f"{state.get('kind')!r}, expected 'row'")
        if self._finalized or self._seen or self.cache.stats.accesses:
            raise CheckpointError("restore target store must be fresh")
        cache = self.cache
        for i, entries in state["buckets"]:
            if i >= len(cache._buckets):
                raise CheckpointError(
                    f"snapshot bucket {i} exceeds the cache geometry "
                    f"({len(cache._buckets)} buckets)")
            bucket = cache._buckets[i]
            for key, states, aux, dirty in entries:
                bucket[key] = Entry(key=key, value=CacheValue(
                    states=states, aux=aux, dirty=dirty))
        cache.stats = state["stats"]
        cache._evict_counts = dict(state["evict_counts"])
        self.backing.data = state["backing_data"]
        self.backing.writes = state["backing_writes"]
        self._seen = dict.fromkeys(state["seen"])
        self._since_refresh = state["since_refresh"]
        self.refreshes = state["refreshes"]

    # -- statistics -------------------------------------------------------------

    @property
    def stats(self):
        return self.cache.stats

    @property
    def backing_writes(self) -> int:
        """Total backing-store writes so far (mirrors the vector
        store's surface, which avoids materialising the store)."""
        return self.backing.writes

    def eviction_fraction(self) -> float:
        return self.cache.stats.eviction_fraction

    def accuracy(self) -> float:
        """Fig. 6 metric — fraction of keys whose value is valid."""
        self.finalize()
        return self.backing.accuracy


def _copy_row_aux(aux: AuxState) -> AuxState:
    """Copy auxiliary registers deeply enough that the live store
    cannot mutate the checkpointed copy (``update_aux`` mutates the
    ``P`` dict in place and appends to the log list; other entries are
    replaced, never mutated)."""
    out: AuxState = {}
    for name, value in aux.items():
        if isinstance(value, dict):
            out[name] = dict(value)
        elif isinstance(value, list):
            out[name] = list(value)
        else:
            out[name] = value
    return out


def build_result_table(stage: GroupByStage, backing: BackingStore,
                       keys: Iterable[Hashable],
                       params: Mapping[str, Numeric],
                       include_invalid: bool = False) -> ResultTable:
    """Materialise one ``GROUPBY`` stage's output from a (finalized)
    backing store — shared by the row and the vectorized store engines.

    ``keys`` fixes the row order (first-access order for both engines).
    """
    out = ResultTable(schema=stage.output)
    key_fields = stage.key.fields
    for key in keys:
        row: Row = dict(zip(key_fields, key))
        valid = True
        for col in stage.output.columns:
            if col.kind == "agg":
                state = backing.value_of(key, col.fold)
                if state is None:
                    valid = False
                    segments = backing.segments_of(key, col.fold)
                    if segments:
                        row[col.name] = segments[-1][col.state_var]
                    continue
                row[col.name] = state[col.state_var]
            elif col.kind == "derived":
                state = backing.value_of(key, col.fold)
                if state is None:
                    valid = False
                    continue
                row[col.name] = evaluate(
                    col.read_expr, EvalContext(state=state, params=params)
                )
        if valid or include_invalid:
            out.rows.append(row)
    return out
