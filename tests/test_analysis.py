"""Analysis-driver tests: tiny Fig. 5 / Fig. 6 sweeps and shape checks."""

import pytest

from repro.analysis.accuracy import run_accuracy_sweep
from repro.analysis.accuracy import shape_checks as accuracy_shape_checks
from repro.analysis.eviction import run_eviction_sweep
from repro.analysis.eviction import shape_checks as eviction_shape_checks
from repro.analysis.report import banner, format_percent, format_table

#: A very small scale keeps these tests fast; the benches run larger.
SCALE = 1.0 / 4096.0
CAPS = (1 << 16, 1 << 18, 1 << 20)


@pytest.fixture(scope="module")
def eviction_sweep():
    return run_eviction_sweep(scale=SCALE, capacities=CAPS)


@pytest.fixture(scope="module")
def accuracy_sweep():
    return run_accuracy_sweep(scale=SCALE, capacities=CAPS)


class TestEvictionSweep:
    def test_all_points_present(self, eviction_sweep):
        assert len(eviction_sweep.points) == len(CAPS) * 3

    def test_fractions_in_range(self, eviction_sweep):
        for point in eviction_sweep.points:
            assert 0.0 <= point.eviction_fraction < 1.0

    def test_fig5_shape_holds(self, eviction_sweep):
        assert eviction_shape_checks(eviction_sweep) == []

    def test_evictions_per_sec_conversion(self, eviction_sweep):
        point = eviction_sweep.points[0]
        assert point.evictions_per_sec == pytest.approx(
            point.eviction_fraction * 22.588e6, rel=0.01)

    def test_paper_mbits_axis(self, eviction_sweep):
        point = eviction_sweep.point("8way", 1 << 18)
        assert point.paper_mbits == pytest.approx(32.0)


class TestAccuracySweep:
    def test_fig6_shape_holds(self, accuracy_sweep):
        assert accuracy_shape_checks(accuracy_sweep) == []

    def test_accuracies_in_range(self, accuracy_sweep):
        for point in accuracy_sweep.points:
            assert 0.0 <= point.accuracy <= 1.0

    def test_windows_present(self, accuracy_sweep):
        assert {p.window for p in accuracy_sweep.points} == \
            {"1min", "3min", "5min"}

    def test_shorter_window_more_accurate_at_operating_point(self, accuracy_sweep):
        # The 32-Mbit point is where the paper quotes 74% -> 84%; the
        # ordering below it is not asserted (prefix length-bias, see
        # shape_checks docstring).
        point = 1 << 18
        series = {p.window: p.accuracy for p in accuracy_sweep.points
                  if p.paper_pairs == point}
        assert series["1min"] >= series["5min"] - 0.01


class TestReportFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_format_percent(self):
        assert format_percent(0.0355) == "3.55%"

    def test_banner(self):
        assert "hello" in banner("hello")
