"""Output-queue model for the network simulator.

Each switch egress port has one FIFO output queue with a finite buffer
(in packets) and a deterministic service rate set by the link speed.
Arrivals must be presented in nondecreasing time order (the simulator's
event loop guarantees this); each arrival is resolved analytically:

* packets whose departure time has passed are drained;
* if the buffer is full the packet is *dropped* — its observation gets
  ``tout = +inf``, exactly the encoding the paper's loss-rate query
  filters on (§2);
* otherwise the packet departs at ``max(now, busy_until) + tx_time``.

The observation fields ``qin`` (depth seen at enqueue, the paper's
``qsize``) and ``qout`` (depth at dequeue) are both produced; ``qout``
for a FIFO equals the number of packets that arrived during the
packet's residency and are still queued at its departure, which the
queue tracks incrementally.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class Departure:
    """A successfully forwarded packet: when it leaves and what it saw."""

    tin: int
    tout: int
    qin: int
    qout: int


@dataclass(frozen=True)
class Drop:
    """A packet dropped at enqueue (buffer full)."""

    tin: int
    qin: int

    @property
    def tout(self) -> float:
        return math.inf


class OutputQueue:
    """One FIFO egress queue.

    Args:
        qid: Globally unique queue identifier (switch, port).
        rate_gbps: Link speed in Gbit/s.
        buffer_packets: Buffer capacity in packets (excluding the one
            in transmission).
    """

    def __init__(self, qid: int, rate_gbps: float = 10.0, buffer_packets: int = 64):
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        self.qid = qid
        self.ns_per_byte = 8.0 / rate_gbps
        self.buffer_packets = buffer_packets
        self.busy_until = 0
        self._resident: deque[int] = deque()  # departure times, FIFO order
        self.arrivals = 0
        self.drops = 0
        self.peak_depth = 0

    def _drain(self, now: int) -> None:
        resident = self._resident
        while resident and resident[0] <= now:
            resident.popleft()

    def offer(self, now: int, pkt_len: int) -> Departure | Drop:
        """Present one arrival; returns its fate.

        ``now`` must be ≥ every previous call's ``now``.
        """
        self.arrivals += 1
        self._drain(now)
        depth = len(self._resident)
        self.peak_depth = max(self.peak_depth, depth)
        if depth >= self.buffer_packets:
            self.drops += 1
            return Drop(tin=now, qin=depth)
        start = now if now > self.busy_until else self.busy_until
        tout = start + int(pkt_len * self.ns_per_byte)
        self.busy_until = tout
        self._resident.append(tout)
        # Depth at departure: packets behind this one still resident
        # when it leaves.  In FIFO order, that is everyone currently
        # behind it (they all depart later), i.e. queue length at its
        # own departure equals the number of later arrivals still
        # present — approximated here by the post-enqueue backlog count
        # at service start, which is exact for work-conserving FIFO.
        qout = len(self._resident) - 1
        return Departure(tin=now, tout=tout, qin=depth, qout=qout)

    @property
    def depth(self) -> int:
        return len(self._resident)

    @property
    def drop_fraction(self) -> float:
        return self.drops / self.arrivals if self.arrivals else 0.0
