"""Area and feasibility model (paper §3.3 and §4).

Back-of-the-envelope accounting the paper uses to argue the design is
practical:

* SRAM density ~7000 Kbit/mm² [ARM, ref 13];
* the smallest switching chips occupy ~200 mm² [Gibb et al., ref 20];
* a 32-Mbit cache therefore costs < 2.5% additional die area;
* key-value pairs for ``SELECT COUNT GROUPBY 5tuple`` are 128 bits
  (104-bit 5-tuple key + 24-bit counter);
* storing the trace's 3.8 M flows on-chip would need ~486 Mbit ≈ 38%
  of the chip — hence the split design;
* a 1 GHz switch (10⁹ 64-byte packets/s) at 850-byte average packets
  and 30% utilisation processes ~22.6 M packets/s, converting eviction
  fractions into backing-store write rates (Fig. 5, right);
* scale-out stores sustain "a few hundred thousand operations per
  second per core" [refs 1, 5, 10, 24].

Digital logic (LRU, hash, fused multiply-add update) is ignored
"relative to the SRAM" (§3.3), so area here is memory area only.
"""

from __future__ import annotations

from dataclasses import dataclass

#: SRAM density, Kbit per mm² (§4, ref [13]).
SRAM_KBIT_PER_MM2 = 7000.0

#: Die area of the smallest switching chips, mm² (§4, ref [20]).
CHIP_AREA_MM2 = 200.0

#: Switch pipeline clock (§3: "typically 1 GHz", one packet per ns).
CLOCK_HZ = 1e9

#: Minimum-size packet assumed at full clock rate (§4: "a billion
#: 64-byte packets per second").
BASE_PACKET_BYTES = 64

#: Typical datacenter conditions (§4, from Benson et al. [16]).
AVG_PACKET_BYTES = 850
UTILIZATION = 0.30

#: Backing-store capability quoted by the paper (order of magnitude):
#: "a few hundred thousand requests per second per core".
BACKING_STORE_OPS_PER_CORE = 300_000.0

MBIT = 1 << 20


def sram_area_mm2(bits: float) -> float:
    """Die area of ``bits`` of SRAM at the §4 density."""
    kbits = bits / 1000.0
    return kbits / SRAM_KBIT_PER_MM2


def area_fraction(bits: float, chip_mm2: float = CHIP_AREA_MM2) -> float:
    """Cache area as a fraction of the chip die."""
    return sram_area_mm2(bits) / chip_mm2


def cache_bits(n_pairs: int, pair_bits: int) -> int:
    """Total SRAM bits for ``n_pairs`` key-value pairs."""
    return n_pairs * pair_bits


def pairs_in_cache(total_bits: float, pair_bits: int) -> int:
    """Key-value pairs that fit in ``total_bits`` of SRAM."""
    return int(total_bits // pair_bits)


def effective_packet_rate(
    clock_hz: float = CLOCK_HZ,
    base_packet_bytes: int = BASE_PACKET_BYTES,
    avg_packet_bytes: int = AVG_PACKET_BYTES,
    utilization: float = UTILIZATION,
) -> float:
    """Average packets/s under typical conditions (§4: ≈22.6 M/s).

    The switch forwards ``clock_hz`` minimum-size packets per second at
    line rate; capacity in bytes/s is scaled by utilisation and divided
    by the average packet size.
    """
    bytes_per_second = clock_hz * base_packet_bytes
    return bytes_per_second * utilization / avg_packet_bytes


def evictions_per_second(eviction_fraction: float,
                         packet_rate: float | None = None) -> float:
    """Backing-store write rate implied by an eviction fraction —
    the Fig. 5 right-hand plot's y-axis."""
    rate = effective_packet_rate() if packet_rate is None else packet_rate
    return eviction_fraction * rate


def backing_store_cores(eviction_rate: float,
                        ops_per_core: float = BACKING_STORE_OPS_PER_CORE) -> float:
    """Cores of a scale-out key-value store needed to absorb
    ``eviction_rate`` writes/s."""
    return eviction_rate / ops_per_core


@dataclass(frozen=True)
class AreaReport:
    """Area accounting for one cache configuration."""

    pair_bits: int
    n_pairs: int

    @property
    def total_bits(self) -> int:
        return cache_bits(self.n_pairs, self.pair_bits)

    @property
    def total_mbit(self) -> float:
        return self.total_bits / MBIT

    @property
    def area_mm2(self) -> float:
        return sram_area_mm2(self.total_bits)

    @property
    def chip_fraction(self) -> float:
        return area_fraction(self.total_bits)

    def describe(self) -> str:
        return (
            f"{self.n_pairs} pairs x {self.pair_bits} b = {self.total_mbit:.1f} Mbit; "
            f"{self.area_mm2:.2f} mm2 = {100 * self.chip_fraction:.2f}% of a "
            f"{CHIP_AREA_MM2:.0f} mm2 die"
        )


def paper_headline_numbers() -> dict[str, float]:
    """The §4 in-text figures, recomputed from the model (bench T-AREA).

    Returns a dict with:
        ``cache_32mbit_area_pct``  — <2.5 claimed;
        ``all_flows_mbit``         — ~486 claimed (3.8 M flows);
        ``all_flows_area_pct``     — ~38 claimed;
        ``packet_rate_mpps``       — ~22.6 claimed;
        ``evictions_at_3p55_pct``  — ~802 K claimed (3.55% of packets).
    """
    pair_bits = 128  # 104-bit 5-tuple + 24-bit counter
    return {
        "cache_32mbit_area_pct": 100 * area_fraction(32 * MBIT),
        "all_flows_mbit": cache_bits(3_800_000, pair_bits) / MBIT,
        "all_flows_area_pct": 100 * area_fraction(cache_bits(3_800_000, pair_bits)),
        "packet_rate_mpps": effective_packet_rate() / 1e6,
        "evictions_at_3p55_pct": evictions_per_second(0.0355),
    }
