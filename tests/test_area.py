"""Area-model tests: the §3.3/§4 back-of-the-envelope numbers."""

import pytest

from repro.switch.area import (
    AreaReport,
    MBIT,
    area_fraction,
    backing_store_cores,
    cache_bits,
    effective_packet_rate,
    evictions_per_second,
    paper_headline_numbers,
    pairs_in_cache,
    sram_area_mm2,
)


class TestHeadlineNumbers:
    """Every in-text figure of §4, recomputed."""

    def test_32mbit_cache_under_2_5_percent(self):
        assert 100 * area_fraction(32 * MBIT) < 2.5

    def test_all_flows_need_about_486_mbit(self):
        bits = cache_bits(3_800_000, 128)
        assert bits / MBIT == pytest.approx(486, rel=0.05)

    def test_all_flows_cost_about_38_percent(self):
        bits = cache_bits(3_800_000, 128)
        assert 100 * area_fraction(bits) == pytest.approx(38, rel=0.1)

    def test_packet_rate_22_6_mpps(self):
        assert effective_packet_rate() / 1e6 == pytest.approx(22.6, rel=0.01)

    def test_eviction_rate_802k_at_3_55_percent(self):
        # §4: 3.55% eviction fraction at 32 Mbit ⇒ 802 K writes/s.
        assert evictions_per_second(0.0355) == pytest.approx(802_000, rel=0.01)

    def test_headline_dict_consistent(self):
        numbers = paper_headline_numbers()
        assert numbers["cache_32mbit_area_pct"] < 2.5
        assert numbers["packet_rate_mpps"] == pytest.approx(22.6, rel=0.01)


class TestModelArithmetic:
    def test_sram_area_linear(self):
        assert sram_area_mm2(2 * MBIT) == pytest.approx(2 * sram_area_mm2(MBIT))

    def test_pairs_in_cache_inverse_of_cache_bits(self):
        assert pairs_in_cache(cache_bits(1000, 128), 128) == 1000

    def test_32mbit_holds_2_18_pairs_at_128b(self):
        # §4 sweep: 8 Mbit = 2^16 pairs ... 32 Mbit = 2^18 pairs.
        assert pairs_in_cache(32 * MBIT, 128) == 1 << 18

    def test_backing_store_cores(self):
        assert backing_store_cores(802_000, ops_per_core=300_000) == \
            pytest.approx(2.67, rel=0.01)


class TestAreaReport:
    def test_fig5_target_configuration(self):
        report = AreaReport(pair_bits=128, n_pairs=1 << 18)
        assert report.total_mbit == pytest.approx(32.0)
        assert 100 * report.chip_fraction < 2.5
        assert "32.0 Mbit" in report.describe()

    def test_describe_mentions_chip_fraction(self):
        report = AreaReport(pair_bits=128, n_pairs=1 << 16)
        assert "%" in report.describe()
