#!/usr/bin/env python
"""Cache planning: size the on-chip store for a query and a workload.

Recreates the §4 methodology as an operator tool: given a query, the
compiler reports bits per key-value pair; the area model converts
candidate cache sizes to % of switch die; and a trace-driven sweep
reports the eviction rate each size implies — i.e. the write rate the
backing store must sustain and the cores a Redis/Memcached-class store
would need.

Run:  python examples/cache_planning.py
"""

from repro import compile_program, parse_program, resolve_program
from repro.analysis.report import format_table
from repro.switch.area import (
    AreaReport,
    backing_store_cores,
    effective_packet_rate,
)
from repro.switch.kvstore.cache import CacheGeometry, simulate_eviction_count
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

QUERY = "SELECT COUNT GROUPBY 5tuple"

#: Candidate cache sizes in pairs, at paper scale.
CANDIDATES = tuple(1 << e for e in range(16, 22))

#: Trace scale (and cache scaling) — see DESIGN.md on substitutions.
SCALE = 1.0 / 512.0


def main() -> None:
    program = compile_program(resolve_program(parse_program(QUERY)))
    stage = program.groupby_stages[0]
    print(f"query: {QUERY.strip()}")
    print(f"pair layout: {stage.key.bits}-bit key + {stage.value.bits}-bit "
          f"value = {stage.pair_bits} bits\n")

    keys = generate_key_stream(CaidaTraceConfig(scale=SCALE)).tolist()
    packet_rate = effective_packet_rate()

    rows = []
    for pairs in CANDIDATES:
        area = AreaReport(pair_bits=stage.pair_bits, n_pairs=pairs)
        scaled = max(8, int(pairs * SCALE) // 8 * 8)
        stats = simulate_eviction_count(
            keys, CacheGeometry.set_associative(scaled, ways=8))
        writes = stats.eviction_fraction * packet_rate
        rows.append([
            f"{area.total_mbit:.0f}",
            f"{pairs:,}",
            f"{100 * area.chip_fraction:.2f}%",
            f"{100 * stats.eviction_fraction:.2f}%",
            f"{writes / 1e3:,.0f}K",
            f"{backing_store_cores(writes):.1f}",
        ])
    print(format_table(
        ["Mbit", "pairs", "% die", "evict %", "writes/s", "KV cores"],
        rows,
        title="cache sizing for the query (8-way, CAIDA-like trace, "
              f"scale {SCALE:.4g})",
    ))
    print("\npaper's pick: 32 Mbit — <2.5% of die, backing-store load "
          "within a few commodity cores (§4).")


if __name__ == "__main__":
    main()
