"""Deterministic fault injection for durable-session testing.

A :class:`FaultPlan` names, ahead of time, exactly which events fail:
the Nth batch posted to worker ``w`` kills that worker first, the Nth
acknowledgement seen on the control pipe is dropped (its shared-memory
segment stays pending until close) or duplicated (exercising release
idempotency), and the Nth session ingest call aborts mid-window with
:class:`InjectedFault` (exercising session poisoning).  Plans are plain
data, so a seeded schedule (:meth:`FaultPlan.seeded`) is reproducible
across runs — the property the differential checkpoint tests and
``benchmarks/bench_durability.py`` rely on: a crashed-and-recovered run
must be bit-identical to an uninterrupted one.

Connection-level faults cover the live ingest service
(:mod:`repro.telemetry.serve` / :mod:`repro.telemetry.client`): the Nth
batch *send* on the wire can disconnect mid-frame (half the frame's
bytes are written, then the socket drops — the server discards the
incomplete frame and the client's sequence resync delivers the batch
exactly once on retry), corrupt the frame (a payload byte is flipped,
tripping the frame checksum server-side), or stall (the client sleeps
past the server's idle timeout, exercising dead-client reaping).  The
served differential property in ``tests/test_serve.py`` runs under
these plans: socket ingest with injected connection faults must stay
bit-identical to :meth:`QueryEngine.run`.

The :class:`FaultInjector` is the live counterpart threaded through
``QueryEngine.open(..., faults=...)`` down to the
:class:`~repro.telemetry.shard_exec.ShardWorkerPool` transport.  The
pool consults it only on *public* sends and acks — never on its
internal checkpoint/restore/replay traffic, so recovery itself is not
re-faulted and every plan terminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """Raised by :meth:`FaultInjector.on_ingest` to abort a session
    ingest mid-window on schedule."""


@dataclass
class FaultPlan:
    """Which event ordinals fail.  All ordinals are 1-based and count
    *events of that type* since the injector was created.

    Attributes:
        kill_posts: ``{worker_index: {post_ordinal, ...}}`` — before
            the Nth batch is posted to that worker, the worker process
            is SIGKILLed (the batch is delivered via recovery replay).
        drop_acks: Ack ordinals (across all workers) whose shared-
            memory release is skipped.
        dup_acks: Ack ordinals processed twice.
        abort_ingests: Session-level ingest ordinals that raise
            :class:`InjectedFault` mid-call.
        disconnect_sends: Wire-send ordinals (client side) where only
            half of the batch frame is written before the socket drops.
        corrupt_sends: Wire-send ordinals whose frame payload has one
            byte flipped (checksum failure at the server).
        stall_sends: Wire-send ordinals preceded by a
            ``stall_seconds`` sleep (idle/dead-client timeout fodder).
        stall_seconds: How long a stalled send sleeps.
    """

    kill_posts: dict[int, set[int]] = field(default_factory=dict)
    drop_acks: set[int] = field(default_factory=set)
    dup_acks: set[int] = field(default_factory=set)
    abort_ingests: set[int] = field(default_factory=set)
    disconnect_sends: set[int] = field(default_factory=set)
    corrupt_sends: set[int] = field(default_factory=set)
    stall_sends: set[int] = field(default_factory=set)
    stall_seconds: float = 0.5

    @classmethod
    def seeded(cls, seed: int, n_workers: int, kills: int = 1,
               drops: int = 1, dups: int = 1, aborts: int = 0,
               disconnects: int = 0, corrupts: int = 0, stalls: int = 0,
               stall_seconds: float = 0.5,
               horizon: int = 20) -> "FaultPlan":
        """A reproducible plan: ``kills``/``drops``/``dups``/``aborts``
        (and the connection-fault counts) drawn uniformly from the
        first ``horizon`` ordinals of each event type."""
        rng = random.Random(seed)
        kill_posts: dict[int, set[int]] = {}
        for _ in range(kills):
            kill_posts.setdefault(
                rng.randrange(n_workers), set()).add(
                rng.randint(1, horizon))
        return cls(
            kill_posts=kill_posts,
            drop_acks={rng.randint(1, horizon) for _ in range(drops)},
            dup_acks={rng.randint(1, horizon) for _ in range(dups)},
            abort_ingests={rng.randint(1, horizon) for _ in range(aborts)},
            disconnect_sends={rng.randint(1, horizon)
                              for _ in range(disconnects)},
            corrupt_sends={rng.randint(1, horizon) for _ in range(corrupts)},
            stall_sends={rng.randint(1, horizon) for _ in range(stalls)},
            stall_seconds=stall_seconds,
        )


class FaultInjector:
    """Live counters over a :class:`FaultPlan`, plus an event log the
    tests assert against (``injector.events``) to prove each scheduled
    fault actually fired."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: list[tuple] = []
        self._posts: dict[int, int] = {}
        self._acks = 0
        self._ingests = 0
        self._sends = 0
        #: Send faults whose ordinal was claimed by a higher-priority
        #: fault on the same send — carried over to the next sends so
        #: an overlapping plan still fires every scheduled fault.
        self._send_backlog: list[str] = []

    # -- pool transport hooks ------------------------------------------------

    def on_post(self, worker: int, op: str) -> str | None:
        """Consulted before every public send to ``worker``; returns
        ``"kill"`` to SIGKILL the worker first, else ``None``."""
        n = self._posts.get(worker, 0) + 1
        self._posts[worker] = n
        if n in self.plan.kill_posts.get(worker, ()):
            self.events.append(("kill", worker, n, op))
            return "kill"
        return None

    def on_ack(self, worker: int) -> str | None:
        """Consulted on every batch acknowledgement; returns ``"drop"``
        (skip the segment release), ``"dup"`` (release twice), or
        ``None``."""
        self._acks += 1
        if self._acks in self.plan.drop_acks:
            self.events.append(("drop_ack", worker, self._acks))
            return "drop"
        if self._acks in self.plan.dup_acks:
            self.events.append(("dup_ack", worker, self._acks))
            return "dup"
        return None

    # -- session hook --------------------------------------------------------

    def on_ingest(self) -> None:
        """Consulted at the top of every session ingest; raises
        :class:`InjectedFault` on scheduled ordinals."""
        self._ingests += 1
        if self._ingests in self.plan.abort_ingests:
            self.events.append(("abort_ingest", self._ingests))
            raise InjectedFault(
                f"injected fault: ingest #{self._ingests} aborted "
                f"mid-window on schedule")

    # -- wire transport hook (ingest client) ----------------------------------

    def on_send(self) -> str | None:
        """Consulted before every batch frame leaves the client's
        socket; returns ``"disconnect"`` (write half the frame, drop
        the connection), ``"corrupt"`` (flip a payload byte), or
        ``"stall"`` (sleep ``stall_seconds`` first), else ``None``.
        Each ordinal counts one *transmission attempt* — a retried
        batch is a fresh send event, so every scheduled fault fires
        exactly once and every plan terminates.  When one ordinal
        schedules several faults, one fires per send in
        disconnect/corrupt/stall priority order and the rest carry
        over to the following sends (a disconnect or corrupt forces a
        retry, so the carried-over fault always gets its send)."""
        self._sends += 1
        if self._sends in self.plan.disconnect_sends:
            self._send_backlog.append("disconnect")
        if self._sends in self.plan.corrupt_sends:
            self._send_backlog.append("corrupt")
        if self._sends in self.plan.stall_sends:
            self._send_backlog.append("stall")
        if self._send_backlog:
            kind = self._send_backlog.pop(0)
            self.events.append((f"{kind}_send", self._sends))
            return kind
        return None
