"""Off-chip backing store of the split key-value store (paper §3.2).

The backing store is the large, slower key-value store (switch-CPU
DRAM, or a scale-out store such as Redis/Memcached) that absorbs cache
evictions.  Its behaviour depends on each fold's merge spec:

* **mergeable folds** (linear in state): the evicted value is merged
  with the stored value via the synthesised merge function; the store
  always holds one value per key, and — for folds with packet-pure
  coefficients — that value is exact;
* **non-mergeable folds**: the store appends the evicted value to a
  per-key *list of segments*, "each item ... tracks the key's value
  between two evictions"; a key with more than one segment is marked
  **invalid** because a single correct value cannot be inferred,
  though each segment remains correct over its own interval (§3.2).

The store counts absorbed evictions (``writes``) so the telemetry layer
can report the write rate the backing store must sustain — the Fig. 5
right-hand axis — and offers an optional op/s budget check against the
quoted capability of scale-out stores (~100s of K ops/s per core).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping

from repro.core.eval_expr import Numeric
from repro.core.merge_synthesis import AuxState, MergeSpec, State, merge_values
from repro.core.plan import FoldConfig


@dataclass
class KeyEntry:
    """Backing-store record for one key."""

    merged: dict[str, State] = field(default_factory=dict)       # fold -> state
    segments: dict[str, list[State]] = field(default_factory=dict)  # fold -> epochs
    epochs: int = 0

    def segment_count(self, fold: str) -> int:
        return len(self.segments.get(fold, ()))


class BackingStore:
    """Absorbs evictions for one ``GROUPBY`` stage.

    Args:
        folds: The stage's fold configurations (merge specs + inits).
        params: Query-parameter bindings (used by exact-history replay).
    """

    def __init__(self, folds: tuple[FoldConfig, ...],
                 params: Mapping[str, Numeric] | None = None):
        self.folds = folds
        self.params = dict(params or {})
        self.specs: dict[str, MergeSpec] = {f.column: f.merge for f in folds}
        self.inits: dict[str, State] = {
            f.column: f.instance.initial_state() for f in folds
        }
        self.data: dict[Hashable, KeyEntry] = {}
        self.writes = 0

    # -- absorption --------------------------------------------------------

    def absorb(self, key: Hashable, value: Mapping[str, State],
               aux: Mapping[str, AuxState]) -> None:
        """Absorb one evicted cache entry (one backing-store write)."""
        self.writes += 1
        entry = self.data.get(key)
        if entry is None:
            entry = KeyEntry()
            self.data[key] = entry
        entry.epochs += 1
        for fold in self.folds:
            column = fold.column
            spec = self.specs[column]
            evicted_state = dict(value[column])
            if spec.mergeable:
                entry.merged[column] = merge_values(
                    spec,
                    evicted=evicted_state,
                    aux=aux[column],
                    backing=entry.merged.get(column),
                    init_state=self.inits[column],
                    params=self.params,
                )
            else:
                entry.segments.setdefault(column, []).append(evicted_state)

    def clone(self) -> "BackingStore":
        """An independent copy that further :meth:`absorb` calls on
        either store cannot corrupt — the basis of mid-stream result
        snapshots.  Merged states and segment values are never mutated
        in place (``merge_values`` builds fresh dicts), so copying the
        per-key containers suffices."""
        other = BackingStore(self.folds, params=self.params)
        other.writes = self.writes
        other.data = {
            key: KeyEntry(
                merged=dict(entry.merged),
                segments={col: list(segs)
                          for col, segs in entry.segments.items()},
                epochs=entry.epochs,
            )
            for key, entry in self.data.items()
        }
        return other

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def keys(self) -> Iterator[Hashable]:
        return iter(self.data)

    def is_valid(self, key: Hashable) -> bool:
        """Per §3.2: a key is invalid when any non-mergeable fold has
        accumulated more than one segment for it."""
        entry = self.data[key]
        for fold in self.folds:
            if not self.specs[fold.column].mergeable:
                if entry.segment_count(fold.column) > 1:
                    return False
        return True

    def value_of(self, key: Hashable, column: str) -> State | None:
        """Best available state for ``(key, fold)``.

        Mergeable folds return the merged state.  Non-mergeable folds
        return their single segment when the key is valid and ``None``
        otherwise (a single correct value cannot be inferred).
        """
        entry = self.data.get(key)
        if entry is None:
            return None
        spec = self.specs[column]
        if spec.mergeable:
            return entry.merged.get(column)
        segments = entry.segments.get(column, [])
        if len(segments) == 1:
            return segments[0]
        return None

    def segments_of(self, key: Hashable, column: str) -> list[State]:
        """All per-epoch segments for a non-mergeable fold — "each value
        in the list is correct over a specific time interval" (§3.2)."""
        entry = self.data.get(key)
        if entry is None:
            return []
        return list(entry.segments.get(column, ()))

    # -- accuracy accounting (Fig. 6) -------------------------------------------

    def validity_stats(self) -> tuple[int, int]:
        """``(valid_keys, total_keys)`` for the Fig. 6 accuracy metric.

        Only non-mergeable folds can invalidate a key (§3.2), so a
        stage whose folds are all linear-in-state skips the per-key
        scan outright.
        """
        if all(spec.mergeable for spec in self.specs.values()):
            return len(self.data), len(self.data)
        valid = sum(1 for key in self.data if self.is_valid(key))
        return valid, len(self.data)

    @property
    def accuracy(self) -> float:
        """Percent of valid keys (1.0 when the store is empty)."""
        valid, total = self.validity_stats()
        return valid / total if total else 1.0
