"""T-AREA — the §3.3/§4 in-text feasibility numbers.

Recomputes every back-of-the-envelope figure the paper quotes and
prints claimed-vs-computed side by side:

* 32-Mbit SRAM cache < 2.5% of a 200 mm² die at 7000 Kbit/mm²;
* 128 bits per key-value pair (104-bit 5-tuple + 24-bit counter);
* all 3.8 M trace flows on-chip would need ~486 Mbit ≈ 38% of the die;
* 22.6 M average packets/s under datacenter conditions;
* 3.55% evictions at 32 Mbit ⇒ ~802 K backing-store writes/s, within a
  few cores of a scale-out key-value store.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.compiler import compile_program
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.switch.area import (
    MBIT,
    AreaReport,
    area_fraction,
    backing_store_cores,
    cache_bits,
    effective_packet_rate,
    evictions_per_second,
)

CLAIMS = [
    # (label, claimed, computed-thunk, tolerance rel)
    ("32 Mbit cache area (% of die)", 2.5,
     lambda: 100 * area_fraction(32 * MBIT), None),           # upper bound
    ("pair width for COUNT-by-5tuple (bits)", 128,
     lambda: _pair_bits(), 0.0),
    ("all 3.8M flows on-chip (Mbit)", 486,
     lambda: cache_bits(3_800_000, 128) / MBIT, 0.05),
    ("all 3.8M flows on-chip (% of die)", 38,
     lambda: 100 * area_fraction(cache_bits(3_800_000, 128)), 0.1),
    ("average packet rate (M pkts/s)", 22.6,
     lambda: effective_packet_rate() / 1e6, 0.01),
    ("writes/s at 3.55% evictions (K)", 802,
     lambda: evictions_per_second(0.0355) / 1e3, 0.01),
    ("KV-store cores for 802K writes/s", 2.7,
     lambda: backing_store_cores(802_000), 0.05),
]


def _pair_bits() -> int:
    rp = resolve_program(parse_program("SELECT COUNT GROUPBY 5tuple"))
    return compile_program(rp).groupby_stages[0].pair_bits


@pytest.fixture(scope="module", autouse=True)
def area_table(report):
    rows = []
    for label, claimed, thunk, _tol in CLAIMS:
        value = thunk()
        rows.append([label, claimed, f"{value:.3g}"])
    rows.append(["32 Mbit config", "",
                 AreaReport(pair_bits=128, n_pairs=1 << 18).describe()])
    text = format_table(["quantity (§3.3/§4)", "paper", "computed"], rows,
                        title="T-AREA — feasibility arithmetic, claimed vs computed")
    report("T-AREA: §4 headline numbers", text)


@pytest.mark.parametrize("label,claimed,thunk,tol",
                         CLAIMS, ids=[c[0] for c in CLAIMS])
def test_claim_reproduces(label, claimed, thunk, tol, benchmark):
    value = benchmark.pedantic(thunk, rounds=5, iterations=10)
    if tol is None:
        assert value < claimed          # "< 2.5%" style upper bound
    elif tol == 0.0:
        assert value == claimed
    else:
        assert value == pytest.approx(claimed, rel=tol)
