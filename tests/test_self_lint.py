"""Determinism self-lint for replay-critical modules — thin wrapper.

The AST walk that used to live here is now the ``determinism`` checker
of the ``repro.analysis.static`` framework (codes ``RPR-C501`` …
``RPR-C504``; see ``DIAGNOSTICS.md``).  This module keeps the original
test surface — every replay/checkpoint/shard module stays clean, and
the meta-tests prove the rules still *fire* — but delegates the
analysis itself to the shared framework so ``python -m repro check``
and the test suite can never disagree about what the lint means.
"""

from pathlib import Path

import pytest

from repro.analysis.static import (
    DETERMINISM_CODES,
    check_source,
    determinism_modules,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules whose behaviour must be a pure function of (stream, seed) —
#: resolved by the framework so the checker's fnmatch scope and this
#: test's module list are the same definition.
LINTED_MODULES = determinism_modules(SRC)


def _lint(source: str, path: str = "lint_probe.py") -> list[str]:
    """Determinism findings only, formatted ``path:line: CODE msg``."""
    findings = check_source(source, path, select=set(DETERMINISM_CODES),
                            ignore_scope=True)
    return [f"{f.path}:{f.line}: {f.message}" for f in findings]


def test_linted_module_set_is_nonempty_and_present():
    assert len(LINTED_MODULES) >= 10
    for path in LINTED_MODULES:
        assert path.is_file(), path


@pytest.mark.parametrize("path", LINTED_MODULES, ids=lambda p: p.stem)
def test_no_wall_clock_or_shared_randomness(path):
    violations = _lint(path.read_text(), str(path))
    assert not violations, "\n".join(violations)


class TestLinterCatchesViolations:
    """The lint itself must fire — otherwise a silent regression in
    these rules would pass every module forever."""

    def test_flags_wall_clock(self):
        out = _lint("import time\nt = time.time()\n")
        assert len(out) == 1 and "wall clock" in out[0]

    def test_allows_monotonic_and_sleep(self):
        src = "import time\nt = time.monotonic()\ntime.sleep(0.1)\n"
        assert _lint(src) == []

    def test_flags_shared_mt(self):
        for call in ("random.random()", "random.randrange(5)",
                     "random.seed(1)", "random.uniform(0, 1)"):
            out = _lint(f"import random\nx = {call}\n")
            assert out and "shared module-level" in out[0], call

    def test_allows_seeded_random_instance(self):
        src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
        assert _lint(src) == []

    def test_flags_unseeded_random_instance(self):
        out = _lint("import random\nrng = random.Random()\n")
        assert len(out) == 1 and "without a seed" in out[0]

    def test_flags_numpy_global_generator(self):
        for call in ("np.random.rand(3)", "np.random.default_rng()",
                     "numpy.random.shuffle(x)"):
            out = _lint(f"x = {call}\n")
            assert out and "global" in out[0], call

    def test_allows_seeded_generator_objects(self):
        src = "rng = np.random\n"  # bare module alias is not a draw
        # an Attribute chain np.random with no further attr is not flagged
        assert _lint("import numpy as np\n" + src) == []
