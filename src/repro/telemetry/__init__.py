"""End-to-end telemetry runtime and result comparison utilities."""

from .deploy import NetworkDeployment, NetworkRunReport, NetworkSession
from .results import TableDiff, assert_tables_match, compare_tables
from .runtime import QueryEngine, QueryInfo, RunReport, run
from .session import TelemetrySession

__all__ = [
    "NetworkDeployment",
    "NetworkRunReport",
    "NetworkSession",
    "QueryEngine",
    "QueryInfo",
    "RunReport",
    "TableDiff",
    "TelemetrySession",
    "assert_tables_match",
    "compare_tables",
    "run",
]
