"""PERF — sharded parallel session fabric: multi-core scaling.

``QueryEngine.open(shards=N)`` hash-partitions each ``GROUPBY`` stage's
key space by cache set across N forked workers
(:class:`~repro.telemetry.shard_exec.ShardWorkerPool`), each running an
independent windowed split store over its slice; ``close()`` gathers
the per-shard backing stores and combines them with the synthesized
merges.  Because every cache set lives wholly in one shard, the
combined result is **bit-identical** to the single-process engines —
asserted here on every run and in CI by the ``smoke`` tests.

The scaling bench drives the full Fig. 2 catalog over the datacenter
trace at shard counts {1, 2, 4} and records per-query seconds, catalog
totals, and speedups into ``BENCH_sharded.json``.  The acceptance
floor — >= 2.5x total speedup at 4 shards — is asserted only on
runners with >= 4 cores (the artifact records ``cpu_count`` and
whether the floor was asserted); on smaller runners the bench still
runs for the bit-identity checks and publishes honest numbers.

Non-mergeable folds (``tcp_non_monotonic``) cannot be combined across
shards, so their stage routes the whole stream to one worker — they
ride along in the catalog loop at ~1x, which the totals include.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.network.records import ObservationTable
from repro.queries.catalog import FIG2_QUERIES
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine

GEOMETRY = CacheGeometry.set_associative(512, ways=8)
WINDOW = 1 << 15
CHUNK = 8192
SHARD_COUNTS = (1, 2, 4)
MIN_SPEEDUP_AT_4 = 2.5

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def observables(report):
    return (
        {q: t.rows for q, t in report.tables.items()},
        {q: (s.accesses, s.hits, s.misses, s.insertions, s.evictions)
         for q, s in report.cache_stats.items()},
        report.backing_writes,
        report.accuracy,
    )


def chunked(table: ObservationTable, size: int):
    columns = table.columns()
    for lo in range(0, len(table), size):
        yield ObservationTable.from_arrays(
            {name: arr[lo:lo + size] for name, arr in columns.items()})


def run_session(engine: QueryEngine, table: ObservationTable,
                shards: int | None):
    session = engine.open(window=WINDOW, shards=shards)
    for batch in chunked(table, CHUNK):
        session.ingest(batch)
    return session.close(include_invalid=True)


# -- smoke (CI): tiny trace, 2 shards, bit-identity ---------------------------

def _tiny_trace() -> ObservationTable:
    from repro.traffic.datacenter import DatacenterConfig, DatacenterWorkload
    from repro.traffic.tcpgen import clean_sequence_table

    workload = DatacenterWorkload(DatacenterConfig(
        n_flows=30, duration_ns=5_000_000, seed=5))
    table = workload.observation_table()
    clean_sequence_table(table)
    return ObservationTable.from_arrays(table.columns())


def test_smoke_sharded_bit_identical():
    """Every catalog query (including the non-mergeable fallback one)
    over 2 shards == the single-process one-shot run."""
    table = _tiny_trace()
    for entry in FIG2_QUERIES:
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOMETRY)
        base = observables(engine.run(table, include_invalid=True))
        got = observables(run_session(engine, table, shards=2))
        assert got == base, f"{entry.name} diverged under shards=2"


def test_smoke_sharded_mid_stream_snapshot():
    table = _tiny_trace()
    engine = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip",
                         geometry=GEOMETRY)
    single = engine.open(window=1024)
    sharded = engine.open(window=1024, shards=2)
    for batch in chunked(table, 2048):
        single.ingest(batch)
        sharded.ingest(batch)
        assert observables(sharded.results()) == observables(single.results())
    assert observables(sharded.close()) == observables(single.close())


# -- scaling: full Fig. 2 catalog at 1/2/4 shards -----------------------------

@pytest.fixture(scope="module")
def scaling(report, dc_trace):
    table = ObservationTable.from_arrays(dc_trace.columns())
    cpu_count = os.cpu_count() or 1
    per_query: dict[str, dict[str, float]] = {}
    totals = {str(n): 0.0 for n in SHARD_COUNTS}

    lines = [f"{len(table)} records, window {WINDOW}, chunk {CHUNK}, "
             f"{cpu_count} cores"]
    for entry in FIG2_QUERIES:
        engine = QueryEngine(entry.source, params=entry.default_params,
                             geometry=GEOMETRY)
        timings: dict[str, float] = {}
        baseline = None
        for n in SHARD_COUNTS:
            start = time.perf_counter()
            got = run_session(engine, table, shards=n)
            seconds = time.perf_counter() - start
            timings[str(n)] = round(seconds, 4)
            totals[str(n)] += seconds
            if baseline is None:
                baseline = observables(got)
            else:
                assert observables(got) == baseline, \
                    f"{entry.name} diverged at shards={n}"
        per_query[entry.name] = timings
        lines.append(
            "  " + f"{entry.name:<24}" + "  ".join(
                f"{n}sh {timings[str(n)]:7.3f}s" for n in SHARD_COUNTS))

    speedups = {str(n): round(totals["1"] / totals[str(n)], 3)
                for n in SHARD_COUNTS}
    floor_asserted = cpu_count >= 4
    payload = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": cpu_count,
        "records": len(table),
        "window": WINDOW,
        "chunk": CHUNK,
        "geometry": GEOMETRY.describe(),
        "shard_counts": list(SHARD_COUNTS),
        "per_query_seconds": per_query,
        "total_seconds": {k: round(v, 4) for k, v in totals.items()},
        "speedups": speedups,
        "speedup_floor_at_4": MIN_SPEEDUP_AT_4,
        "floor_asserted": floor_asserted,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    lines.append("catalog totals: " + "  ".join(
        f"{n} shards {totals[str(n)]:7.3f}s ({speedups[str(n)]:.2f}x)"
        for n in SHARD_COUNTS))
    lines.append(f"floor ({MIN_SPEEDUP_AT_4}x at 4 shards) "
                 f"{'asserted' if floor_asserted else 'skipped: < 4 cores'}")
    lines.append(f"artifact: {ARTIFACT.name}")
    report("PERF: sharded session fabric (Fig. 2 catalog)", "\n".join(lines))
    return payload


def test_sharded_scaling_floor(scaling):
    """>= 2.5x total catalog speedup at 4 shards — asserted on >= 4-core
    runners; elsewhere the artifact records the honest numbers with
    ``floor_asserted: false``."""
    if not scaling["floor_asserted"]:
        pytest.skip(
            f"scaling floor needs >= 4 cores; runner has "
            f"{scaling['cpu_count']} (artifact still published)")
    assert scaling["speedups"]["4"] >= MIN_SPEEDUP_AT_4, scaling
