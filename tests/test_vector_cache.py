"""Differential tests: the array-native cache simulator vs the
reference per-access cache, across randomized geometries, policies,
seeds, and adversarial key streams.  All five counters must be
bit-identical everywhere — the vector engine is exact, not a model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HardwareError
from repro.analysis.accuracy import _window_validity
from repro.switch.kvstore.cache import (
    CacheGeometry,
    mix_key,
    simulate_eviction_count,
)
from repro.switch.kvstore.vector_cache import (
    VectorCacheSim,
    _count_prev_greater,
    mix_key_array,
    simulate_eviction_count_vector,
    splitmix64_array,
    window_validity_vector,
)


def counters(stats):
    return (stats.accesses, stats.hits, stats.misses,
            stats.insertions, stats.evictions)


def assert_match(keys, geometry, policy="lru", seed=0):
    row = simulate_eviction_count(list(keys), geometry, policy=policy,
                                  seed=seed, engine="row")
    vec = simulate_eviction_count_vector(np.asarray(keys, dtype=np.int64),
                                         geometry, policy=policy, seed=seed)
    assert counters(vec) == counters(row)


class TestHashing:
    def test_splitmix64_array_matches_scalar(self):
        values = np.array([0, 1, 12345, 2**63 - 1, 2**64 - 1], dtype=np.uint64)
        from repro.switch.kvstore.cache import splitmix64

        got = splitmix64_array(values)
        for v, g in zip(values.tolist(), got.tolist()):
            assert splitmix64(v) == g

    @given(st.lists(st.integers(min_value=-2**62, max_value=2**62), max_size=30),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_mix_key_array_matches_scalar(self, values, seed):
        arr = np.array(values, dtype=np.int64)
        got = mix_key_array(arr, seed=seed)
        for v, g in zip(values, got.tolist()):
            assert mix_key(v, seed=seed) == g

    def test_mix_key_array_tuples(self):
        rows = np.array([[1, 2, 3], [4, 5, 6], [1, 2, 3]], dtype=np.int64)
        got = mix_key_array(rows, seed=9)
        for row, g in zip(rows.tolist(), got.tolist()):
            assert mix_key(tuple(row), seed=9) == g

    def test_rejects_3d(self):
        with pytest.raises(HardwareError):
            mix_key_array(np.zeros((2, 2, 2), dtype=np.int64))


class TestMergeCounter:
    @given(st.lists(st.integers(min_value=0, max_value=1_000_000), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_quadratic_reference(self, values):
        v = np.array(values, dtype=np.int64)
        ref = np.array([(v[:i] > v[i]).sum() for i in range(len(v))],
                       dtype=np.int64)
        assert np.array_equal(_count_prev_greater(v), ref)

    def test_crosses_block_boundaries(self):
        v = np.arange(1000, dtype=np.int64)[::-1].copy()
        got = _count_prev_greater(v)
        assert np.array_equal(got, np.arange(1000))


@settings(max_examples=120, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=40), max_size=300),
    n_buckets=st.integers(min_value=1, max_value=9),
    m_slots=st.integers(min_value=1, max_value=11),
    policy=st.sampled_from(["lru", "fifo", "random"]),
    seed=st.integers(min_value=0, max_value=4),
)
def test_counters_bit_identical(keys, n_buckets, m_slots, policy, seed):
    """The core differential property, over randomized geometries
    (including n=1, m=1, non-power-of-two bucket counts), all three
    policies, and several hash seeds."""
    assert_match(keys, CacheGeometry(n_buckets, m_slots),
                 policy=policy, seed=seed)


class TestAdversarialStreams:
    def test_all_same_key(self):
        keys = np.zeros(5000, dtype=np.int64)
        for geometry in (CacheGeometry.hash_table(8),
                         CacheGeometry.set_associative(16, 4),
                         CacheGeometry.fully_associative(4)):
            assert_match(keys, geometry)

    def test_all_unique_keys(self):
        keys = np.arange(5000, dtype=np.int64)
        for geometry in (CacheGeometry.hash_table(64),
                         CacheGeometry.set_associative(64, 8),
                         CacheGeometry.fully_associative(64)):
            assert_match(keys, geometry)

    @pytest.mark.parametrize("extra", [-1, 0, 1])
    def test_working_set_at_capacity_boundary(self, extra):
        """Cyclic working set exactly at capacity, one below, one
        above — LRU's pathological corner (capacity+1 cycling thrashes
        a full LRU to a 0% hit rate)."""
        capacity = 64
        distinct = capacity + extra
        keys = np.tile(np.arange(distinct, dtype=np.int64), 200)
        assert_match(keys, CacheGeometry.fully_associative(capacity))
        assert_match(keys, CacheGeometry.set_associative(capacity, 8))

    def test_cyclic_beats_sparse_shortcut(self):
        """A long cycle defeats the short-window shortcut: every reuse
        window is huge, exercising the kept-subset merge path."""
        keys = np.tile(np.arange(500, dtype=np.int64), 50)
        assert_match(keys, CacheGeometry.set_associative(256, 8))
        assert_match(keys, CacheGeometry.fully_associative(256))

    def test_interleaved_hot_cold(self):
        rng = np.random.default_rng(5)
        hot = rng.integers(0, 8, 20_000)
        cold = rng.integers(8, 10_000, 20_000)
        keys = np.empty(40_000, dtype=np.int64)
        keys[0::2] = hot
        keys[1::2] = cold
        assert_match(keys, CacheGeometry.set_associative(512, 8), seed=3)

    def test_negative_and_wide_keys(self):
        rng = np.random.default_rng(6)
        keys = (rng.integers(-500, 500, 8000) * (1 << 40)).astype(np.int64)
        assert_match(keys, CacheGeometry.set_associative(64, 8))

    def test_empty_stream(self):
        stats = simulate_eviction_count_vector(
            np.zeros(0, dtype=np.int64), CacheGeometry.set_associative(16, 4))
        assert counters(stats) == (0, 0, 0, 0, 0)


class TestSimSharing:
    def test_capacity_sweep_shares_state(self):
        """One sim instance answering many geometries must equal
        one-shot runs (memoized layouts/inversion tables)."""
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 3000, 60_000).astype(np.int64)
        sim = VectorCacheSim(keys, seed=11)
        grid = [CacheGeometry.fully_associative(m) for m in (256, 512, 1024)]
        grid += [CacheGeometry.set_associative(c, 8) for c in (64, 256, 1024)]
        grid += [CacheGeometry.hash_table(c) for c in (64, 1024)]
        # descending-m re-query forces an inversion-table rebuild
        grid.append(CacheGeometry.fully_associative(32))
        for geometry in grid:
            one_shot = simulate_eviction_count_vector(keys, geometry, seed=11)
            assert counters(sim.stats(geometry)) == counters(one_shot)
            row = simulate_eviction_count(keys, geometry, seed=11, engine="row")
            assert counters(sim.stats(geometry)) == counters(row)

    def test_tuple_keys_match_row_tuples(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 30, (5000, 3)).astype(np.int64)
        geometry = CacheGeometry.set_associative(32, 4)
        row = simulate_eviction_count([tuple(r) for r in rows.tolist()],
                                      geometry, seed=7, engine="row")
        vec = simulate_eviction_count_vector(rows, geometry, seed=7)
        assert counters(vec) == counters(row)


class TestWindowValidity:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=30), max_size=250),
        n_buckets=st.integers(min_value=1, max_value=6),
        m_slots=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_epochs(self, keys, n_buckets, m_slots, seed):
        geometry = CacheGeometry(n_buckets, m_slots)
        ref = _window_validity(list(keys), geometry, seed, engine="row")
        vec = window_validity_vector(np.asarray(keys, dtype=np.int64),
                                     geometry, seed=seed)
        assert vec == ref

    def test_policy_replays_report_validity(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 200, 5000).astype(np.int64)
        geometry = CacheGeometry.set_associative(64, 4)
        for policy in ("fifo", "random"):
            valid, total = window_validity_vector(keys, geometry, seed=1,
                                                  policy=policy)
            assert total == len(np.unique(keys))
            assert 0 <= valid <= total


class TestEngineDispatch:
    def test_auto_picks_vector_for_arrays(self):
        keys = np.arange(100, dtype=np.int64)
        geometry = CacheGeometry.set_associative(16, 4)
        auto = simulate_eviction_count(keys, geometry)
        row = simulate_eviction_count(keys.tolist(), geometry, engine="row")
        assert counters(auto) == counters(row)

    def test_row_engine_accepts_arrays(self):
        keys = np.arange(100, dtype=np.int64)
        geometry = CacheGeometry.hash_table(16)
        assert counters(simulate_eviction_count(keys, geometry, engine="row")) \
            == counters(simulate_eviction_count(keys, geometry, engine="vector"))

    def test_auto_falls_back_for_hashables(self):
        keys = [("a", 1), ("b", 2), ("a", 1)]
        stats = simulate_eviction_count(keys, CacheGeometry.fully_associative(8))
        assert stats.hits == 1

    def test_row_engine_accepts_tuple_key_arrays(self):
        rows = np.random.default_rng(4).integers(0, 20, (2000, 2))
        geometry = CacheGeometry.set_associative(16, 4)
        row = simulate_eviction_count(rows, geometry, engine="row")
        vec = simulate_eviction_count(rows, geometry, engine="vector")
        assert counters(row) == counters(vec)

    def test_unknown_engine_rejected(self):
        with pytest.raises(HardwareError):
            simulate_eviction_count([1], CacheGeometry.hash_table(4),
                                    engine="warp")

    def test_unknown_policy_rejected(self):
        with pytest.raises(HardwareError):
            simulate_eviction_count_vector(np.arange(4),
                                           CacheGeometry.hash_table(4),
                                           policy="mru")
