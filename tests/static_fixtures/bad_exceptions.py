"""Seeded violations: RPR-C401 (swallowed broad except) and RPR-C402
(non-reentrant signal/atexit handler bodies)."""
import atexit
import signal
import threading
import time

_LOCK = threading.Lock()


def flush_everything():
    worker = threading.Thread(target=print)   # C402: thread at shutdown
    worker.start()


def on_term(signum, frame):
    _LOCK.acquire()                           # C402: lock in a handler
    time.sleep(0.5)                           # C402: sleep in a handler
    _LOCK.release()


def swallow(fn):
    try:
        return fn()
    except Exception:                         # C401: swallowed silently
        pass


atexit.register(flush_everything)
signal.signal(signal.SIGTERM, on_term)
