"""Component throughput benchmarks (supporting, not a paper artifact).

Measures the simulation building blocks so regressions in the hot
paths are visible: compiler latency, interpreter vs hardware-pipeline
packet rates, the network simulator's event rate, and trace-generation
speed.  These set the wall-clock budget for the Fig. 5/6 sweeps.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_program
from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.network.simulator import NetworkSimulator
from repro.network.topology import single_switch
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.pipeline import SwitchPipeline
from repro.traffic.caida import CaidaTraceConfig, generate_key_stream

EWMA = (
    "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
    "SELECT 5tuple, ewma GROUPBY 5tuple"
)
PARAMS = {"alpha": 0.1}


def test_compile_latency(benchmark):
    def compile_once():
        return compile_program(resolve_program(parse_program(EWMA)))

    program = benchmark(compile_once)
    assert program.groupby_stages


def test_interpreter_throughput(benchmark, small_trace):
    rp = resolve_program(parse_program(EWMA))
    records = small_trace.records[:5000]

    def run():
        return Interpreter(rp, params=PARAMS).run_result(records)

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) > 0


def test_pipeline_throughput(benchmark, small_trace):
    rp = resolve_program(parse_program(EWMA))
    program = compile_program(rp)
    records = small_trace.records[:5000]

    def run():
        pipeline = SwitchPipeline(program, params=PARAMS,
                                  geometry=CacheGeometry.set_associative(256, 8))
        pipeline.run(records)
        pipeline.finalize()
        return pipeline

    pipeline = benchmark.pedantic(run, rounds=3, iterations=1)
    assert pipeline.packets_seen == len(records)


def test_network_simulator_event_rate(benchmark):
    def run():
        sim = NetworkSimulator(single_switch(8))
        for i in range(2000):
            sim.inject(time_ns=i * 500, src=f"h{i % 7 + 1}", dst="h0",
                       pkt_len=800)
        return sim.run()

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) == 2000


def test_trace_generation_rate(benchmark):
    config = CaidaTraceConfig(scale=1 / 2048)

    def run():
        return generate_key_stream(config)

    keys = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(keys) > 10_000
