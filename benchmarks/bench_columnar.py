"""Columnar-engine perf trajectory: row vs vector across trace sizes.

Records throughput (pkt/s) for the row interpreter and the vectorized
executor, plus the process peak RSS high-water mark, at 10k / 100k / 1M
records, so later PRs have a baseline to compare against.  Each run
also cross-checks that both engines return identical results.

Run a single size (the CI smoke uses 100k)::

    python -m pytest benchmarks/bench_columnar.py -k 100k
"""

from __future__ import annotations

import resource
import sys
import time

import pytest

from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.core.vector_exec import VectorExecutor
from repro.traffic.caida import PAPER_PACKETS, CaidaTraceConfig, generate_caida_like

QUERIES = {
    "counters": ("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip", {}),
    "ewma": (
        "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
        "SELECT 5tuple, ewma GROUPBY 5tuple",
        {"alpha": 0.1},
    ),
}

SIZES = {"10k": 10_000, "100k": 100_000, "1M": 1_000_000}


def _peak_rss_mb() -> float:
    """Process peak RSS high-water mark (cumulative, monotone)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss / 1024.0 if sys.platform != "darwin" else rss / (1024.0 * 1024.0)


@pytest.mark.parametrize("size", list(SIZES))
def test_columnar_scaling(size, report):
    n_target = SIZES[size]
    t0 = time.perf_counter()
    table = generate_caida_like(CaidaTraceConfig(scale=n_target / PAPER_PACKETS))
    gen_s = time.perf_counter() - t0
    assert table.is_columnar

    lines = [f"trace: {len(table):,} records (generated in {gen_s:.2f} s, columnar)"]
    for name, (source, params) in QUERIES.items():
        rp = resolve_program(parse_program(source))

        t0 = time.perf_counter()
        vector = VectorExecutor(rp, params=params).run_result(table)
        vector_s = time.perf_counter() - t0

        records = list(table)
        t0 = time.perf_counter()
        row = Interpreter(rp, params=params).run_result(records)
        row_s = time.perf_counter() - t0
        del records

        assert vector.rows == row.rows, f"{name} diverged at {size}"
        lines.append(
            f"{name:>9}: row {len(table) / row_s:>12,.0f} pkt/s | "
            f"vector {len(table) / vector_s:>12,.0f} pkt/s | "
            f"speedup {row_s / vector_s:>5.1f}x | "
            f"groups {len(vector):,}"
        )
        if size != "10k":
            assert vector_s < row_s, f"vector slower than row for {name} at {size}"
    lines.append(f"peak RSS high-water after {size}: {_peak_rss_mb():,.0f} MB")
    report(f"Columnar engine scaling ({size})", "\n".join(lines))
