"""Switch pipeline model: executes a compiled program over a packet
stream (paper §3.1-3.2).

The pipeline mirrors a match-action architecture [Bosshart et al.,
SIGCOMM'13]: the parser extracts the configured fields, ``WHERE``
predicates run as match stages, per-packet ``SELECT`` stages mirror
matching records to the collection layer, and each ``GROUPBY`` stage
drives one split key-value store.

One :class:`SwitchPipeline` models one switch.  The telemetry runtime
(:mod:`repro.telemetry`) installs pipelines on the simulated network's
switches, streams observations through them, and evaluates the
program's software stages over the collected results.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.errors import CompileError, InterpreterError
from repro.core.eval_expr import Numeric
from repro.core.interpreter import ResultTable, Row
from repro.core.plan import GroupByStage, SelectStage, SwitchProgram
from repro.core.vector_exec import (
    ArrayContext,
    VectorizationError,
    as_column,
    eval_array,
    eval_mask,
)
from repro.network.records import ObservationTable

from .alu import compile_predicate, compile_scalar
from .kvstore.cache import CacheGeometry, CacheStats
from .kvstore.split import SplitKeyValueStore
from .parser_model import ParserConfig, configure_parser

#: Chunk size for the batch execution path: large enough to amortise
#: the per-chunk vector work, small enough to keep the per-chunk Python
#: lists cache-friendly.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Default cache geometry: the paper's target configuration — 32 Mbit
#: at 128 bits/pair is 2^18 pairs, 8-way associative (§4).
DEFAULT_GEOMETRY = CacheGeometry.set_associative(1 << 18, ways=8)

GeometrySpec = CacheGeometry | Mapping[str, CacheGeometry]


class _ColumnRow:
    """A lazy row view over per-chunk column lists.

    Presents attribute access like a :class:`PacketRecord`, so the
    compiled ALU update functions run unchanged on the batch path; the
    underlying values are native Python scalars (``tolist`` output), so
    arithmetic is bit-identical to the row-at-a-time path.
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Mapping[str, list], index: int):
        self._columns = columns
        self._index = index

    def __getattr__(self, name: str):
        try:
            return self._columns[name][self._index]
        except KeyError:
            raise AttributeError(name) from None


class _SelectRunner:
    """Per-packet filter + projection stage."""

    def __init__(self, stage: SelectStage, params: Mapping[str, Numeric]):
        self.stage = stage
        self.params = params
        self.predicate = compile_predicate(stage.where, params)
        self.extractors: list[tuple[str, Callable]] = [
            (col.name, compile_scalar(col.expr, params)) for col in stage.columns
        ]
        self.rows: list[Row] = []

    def process(self, record: object) -> None:
        if not self.predicate(record):
            return
        self.rows.append({name: fn(record) for name, fn in self.extractors})

    def process_batch(self, ctx: ArrayContext, row_lists: Mapping[str, list]) -> None:
        """Vectorized chunk: one mask evaluation plus one array
        expression per output column, instead of per-packet calls."""
        try:
            mask = eval_mask(self.stage.where, ctx)
            if mask is None:
                sel_ctx = ctx
            else:
                sel = np.flatnonzero(mask)
                sel_ctx = ArrayContext(
                    {name: arr[sel] for name, arr in ctx.columns.items()},
                    self.params, len(sel),
                )
            names = [col.name for col in self.stage.columns]
            data = [
                as_column(eval_array(col.expr, sel_ctx), sel_ctx.n).tolist()
                for col in self.stage.columns
            ]
        except VectorizationError:
            for i in range(ctx.n):
                self.process(_ColumnRow(row_lists, i))
            return
        self.rows.extend(dict(zip(names, values)) for values in zip(*data))

    def result_table(self) -> ResultTable:
        return ResultTable(schema=self.stage.output, rows=self.rows)


class _GroupByRunner:
    """Match stage + split key-value store."""

    def __init__(self, stage: GroupByStage, geometry: CacheGeometry,
                 params: Mapping[str, Numeric], policy: str, seed: int,
                 refresh_interval: int | None = None):
        self.stage = stage
        self.params = params
        self.predicate = compile_predicate(stage.where, params)
        self.store = SplitKeyValueStore(
            stage, geometry, params=params, policy=policy, seed=seed,
            refresh_interval=refresh_interval,
        )

    def process(self, record: object) -> None:
        if self.predicate(record):
            self.store.process(record)

    def process_batch(self, ctx: ArrayContext, row_lists: Mapping[str, list]) -> None:
        """Chunk path: the WHERE mask and the key columns are extracted
        once per chunk; the split store's sequential cache machinery
        then runs only for matching packets with pre-built keys."""
        try:
            mask = eval_mask(self.stage.where, ctx)
            key_columns = [
                ctx.columns[f].tolist() for f in self.stage.key.fields
            ]
        except (VectorizationError, KeyError):
            for i in range(ctx.n):
                self.process(_ColumnRow(row_lists, i))
            return
        indices = range(ctx.n) if mask is None else np.flatnonzero(mask).tolist()
        keys = zip(*key_columns)
        process_keyed = self.store.process_keyed
        if mask is None:
            for i, key in enumerate(keys):
                process_keyed(key, _ColumnRow(row_lists, i))
        else:
            keys = list(keys)
            for i in indices:
                process_keyed(keys[i], _ColumnRow(row_lists, i))


class SwitchPipeline:
    """One switch running one compiled program.

    Args:
        program: Output of :func:`repro.core.compiler.compile_program`.
        params: Bindings for the program's free parameters.
        geometry: Cache geometry for every ``GROUPBY`` stage, or a
            per-query-name mapping.
        policy: Cache eviction policy.
        seed: Hash seed.
    """

    def __init__(
        self,
        program: SwitchProgram,
        params: Mapping[str, Numeric] | None = None,
        geometry: GeometrySpec = DEFAULT_GEOMETRY,
        policy: str = "lru",
        seed: int = 0,
        refresh_interval: int | None = None,
    ):
        self.program = program
        self.params = dict(params or {})
        missing = set(program.params) - set(self.params)
        if missing:
            raise InterpreterError(f"unbound query parameters: {sorted(missing)}")
        self.parser: ParserConfig = configure_parser(program.parse_fields)
        self._selects = [_SelectRunner(s, self.params) for s in program.select_stages]
        self._groupbys = [
            _GroupByRunner(s, self._geometry_for(s.query_name, geometry),
                           self.params, policy, seed,
                           refresh_interval=refresh_interval)
            for s in program.groupby_stages
        ]
        self.packets_seen = 0

    @staticmethod
    def _geometry_for(name: str, spec: GeometrySpec) -> CacheGeometry:
        if isinstance(spec, CacheGeometry):
            return spec
        if name not in spec:
            raise CompileError(f"no cache geometry supplied for stage {name!r}")
        return spec[name]

    # -- execution -----------------------------------------------------------

    def process(self, record: object) -> None:
        """Run one observation through every stage."""
        self.packets_seen += 1
        for select in self._selects:
            select.process(record)
        for groupby in self._groupbys:
            groupby.process(record)

    def run(self, records: Iterable[object],
            chunk_size: int = DEFAULT_CHUNK_SIZE) -> "SwitchPipeline":
        """Stream ``records`` through every stage.

        A columnar :class:`ObservationTable` takes the chunked batch
        path: per chunk, each stage's WHERE mask and key arrays are
        computed vectorized, and only the split store's sequential
        cache machinery runs per packet.  Any other iterable takes the
        per-record path.  Both paths produce identical results.
        """
        if isinstance(records, ObservationTable) and records.is_columnar:
            return self.run_batch(records, chunk_size=chunk_size)
        process = self.process
        for record in records:
            process(record)
        return self

    def run_batch(self, table: ObservationTable,
                  chunk_size: int = DEFAULT_CHUNK_SIZE) -> "SwitchPipeline":
        """Chunked batch execution over a columnar observation table."""
        columns = table.columns()
        n = len(table)
        # Only the fields the program parses are converted to Python
        # lists for the per-packet update functions (§3.1: the
        # programmable parser extracts exactly the configured fields).
        fields = tuple(self.program.parse_fields) or tuple(columns)
        for lo in range(0, n, chunk_size):
            hi = min(lo + chunk_size, n)
            chunk = {name: arr[lo:hi] for name, arr in columns.items()}
            row_lists = {name: chunk[name].tolist() for name in fields}
            ctx = ArrayContext(chunk, self.params, hi - lo)
            for select in self._selects:
                select.process_batch(ctx, row_lists)
            for groupby in self._groupbys:
                groupby.process_batch(ctx, row_lists)
            self.packets_seen += hi - lo
        return self

    def finalize(self) -> None:
        for groupby in self._groupbys:
            groupby.store.finalize()

    # -- results ---------------------------------------------------------------

    def results(self, include_invalid: bool = False) -> dict[str, ResultTable]:
        """On-switch stage outputs, keyed by query name.  ``GROUPBY``
        outputs come from the backing store (after a flush)."""
        self.finalize()
        out: dict[str, ResultTable] = {}
        for select in self._selects:
            out[select.stage.query_name] = select.result_table()
        for groupby in self._groupbys:
            out[groupby.stage.query_name] = groupby.store.result_table(
                include_invalid=include_invalid
            )
        return out

    def cache_stats(self) -> dict[str, CacheStats]:
        return {g.stage.query_name: g.store.stats for g in self._groupbys}

    def backing_writes(self) -> dict[str, int]:
        return {g.stage.query_name: g.store.backing.writes for g in self._groupbys}

    def store_for(self, query_name: str) -> SplitKeyValueStore:
        for groupby in self._groupbys:
            if groupby.stage.query_name == query_name:
                return groupby.store
        raise KeyError(query_name)
