"""Programmable packet parser model (paper §3.1).

Emerging programmable switches parse "standard headers, metadata and
user-defined ones" [Gibb et al., ANCS'13].  This module models the
parser as a parse graph: the compiler's required field set is mapped to
the headers that must be walked, yielding a parser configuration with a
simple cost model (graph nodes visited, bits extracted) used in plan
diagnostics.

Performance metadata (``tin``, ``tout``, ``qin``, ``qout``, ``qsize``,
``qid``, ``pkt_path``) is not parsed from the wire — it is attached by
the switch's queueing subsystem, "provided by metadata available on
programmable switches" (§3.1) — so it appears in every configuration at
zero parse cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import schema as sch
from repro.core.errors import CompileError

#: Parse-graph nodes: header → (fields it supplies, parent header).
_HEADERS: dict[str, tuple[tuple[str, ...], str | None]] = {
    "ethernet": ((), None),
    "ipv4": (("srcip", "dstip", "proto", "pkt_len"), "ethernet"),
    "tcp": (("srcport", "dstport", "tcpseq", "payload_len"), "ipv4"),
    "udp": (("srcport", "dstport", "payload_len"), "ipv4"),
}

#: Header lengths in bits (for the extraction cost model).
_HEADER_BITS = {"ethernet": 112, "ipv4": 160, "tcp": 160, "udp": 64}

#: Fields attached by the switch itself rather than parsed.
_METADATA_FIELDS = frozenset(
    f.name for f in sch.FIELDS if f.kind == "perf"
) | {"pkt_id"}


@dataclass(frozen=True)
class ParserConfig:
    """A configured parse path for one compiled program."""

    fields: tuple[str, ...]
    headers: tuple[str, ...]
    metadata_fields: tuple[str, ...]

    @property
    def graph_nodes(self) -> int:
        return len(self.headers)

    @property
    def extracted_bits(self) -> int:
        return sum(
            sch.FIELDS_BY_NAME[f].bits for f in self.fields
            if f not in self.metadata_fields
        )

    def describe(self) -> str:
        path = " -> ".join(self.headers) if self.headers else "(metadata only)"
        return (f"parse path {path}; extract {self.extracted_bits} header bits; "
                f"metadata: {', '.join(self.metadata_fields) or 'none'}")


def configure_parser(fields: tuple[str, ...]) -> ParserConfig:
    """Derive the parse path covering ``fields``.

    Raises:
        CompileError: if a field is not parseable by any known header
            and is not switch metadata.
    """
    needed_headers: set[str] = set()
    metadata: list[str] = []
    for name in fields:
        if name not in sch.FIELDS_BY_NAME:
            raise CompileError(f"unknown field {name!r} in parser configuration")
        if name in _METADATA_FIELDS:
            metadata.append(name)
            continue
        owner = _header_for(name)
        if owner is None:
            raise CompileError(f"field {name!r} is not supplied by any header")
        needed_headers.add(owner)

    # Close over parents so the parse path is connected.
    closed: set[str] = set()
    for header in needed_headers:
        node: str | None = header
        while node is not None:
            closed.add(node)
            node = _HEADERS[node][1]
    # TCP and UDP are alternatives on the same branch; keep both when a
    # transport field is needed (the parser branches on proto).
    if "tcp" in closed or "udp" in closed:
        transport_fields = {"srcport", "dstport", "payload_len"}
        if any(f in transport_fields for f in fields):
            closed.update({"tcp", "udp"})
    order = [h for h in ("ethernet", "ipv4", "tcp", "udp") if h in closed]
    return ParserConfig(
        fields=tuple(fields),
        headers=tuple(order),
        metadata_fields=tuple(metadata),
    )


def _header_for(field_name: str) -> str | None:
    for header, (supplied, _parent) in _HEADERS.items():
        if field_name in supplied:
            return header
    return None
