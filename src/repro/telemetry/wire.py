"""Length-framed wire protocol of the live ingest service.

Every message between :class:`~repro.telemetry.client.IngestClient`
and :class:`~repro.telemetry.serve.IngestServer` is one *frame*::

    MAGIC (4) | type (u8) | payload length (u32 LE) | crc32 (u32 LE)
    payload (pickled plain-data dict)

The checksum covers the payload, so a corrupted frame (bit flips, a
mid-frame disconnect spliced onto a new write) surfaces as
:class:`FrameError` instead of deserializing garbage — the server
answers with an ``ERROR`` frame and drops the connection, and the
client's sequence-number resync makes the retry exactly-once.

Payloads are pickled, which is only safe between mutually trusting
endpoints: the service binds to localhost TCP or a UNIX socket by
design (the paper's deployment puts collection on the switch's local
management plane), never to an untrusted network.

Frame types (client → server)::

    HELLO       {"session": name}                 attach/create a session
    BATCH       {"seq": n, "columns": {f: arr}}   one columnar batch
    RESULTS     {}                                mid-stream snapshot
    CHECKPOINT  {}                                durable session checkpoint
    CLOSE       {}                                finalize, final report

and (server → client)::

    OK      {"seq"?, "next_seq"?, ...}   ack / HELLO reply
    BUSY    {"seq": n}                   batch accepted; STOP sending
    READY   {}                           backpressure released, resume
    SHED    {"seq": n, "records": k}     batch dropped (shed mode), counted
    REJECT  {"reason": str}              admission refused; do not retry
    ERROR   {"reason": str, "fatal": bool}
    RESULT  {...}                        RESULTS/CHECKPOINT/CLOSE payload
"""

from __future__ import annotations

import asyncio
import pickle
import struct
import zlib

from repro.core.errors import SessionError

MAGIC = b"RPRS"
HEADER = struct.Struct("<4sBII")  # magic, type, payload length, crc32

#: Refuse absurd frame lengths before allocating (a corrupt length
#: field must not turn into a multi-GiB read).
MAX_PAYLOAD = 1 << 28

# client -> server
T_HELLO = 1
T_BATCH = 2
T_RESULTS = 3
T_CHECKPOINT = 4
T_CLOSE = 5
# server -> client
T_OK = 16
T_BUSY = 17
T_READY = 18
T_SHED = 19
T_REJECT = 20
T_ERROR = 21
T_RESULT = 22


class FrameError(SessionError):
    """A frame failed validation: bad magic, oversized length, checksum
    mismatch, or an undecodable payload.  The connection it arrived on
    cannot be trusted to be in frame sync and is dropped."""


def pack_frame(ftype: int, payload: dict) -> bytes:
    """Serialize one frame (header + checksummed pickled payload)."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return HEADER.pack(MAGIC, ftype, len(body), zlib.crc32(body)) + body


def parse_header(header: bytes) -> tuple[int, int, int]:
    """Validate a frame header; returns ``(type, length, crc32)``."""
    magic, ftype, length, crc = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(
            f"bad frame magic {magic!r} — peer is not speaking the "
            f"ingest protocol (or the stream lost frame sync)")
    if length > MAX_PAYLOAD:
        raise FrameError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte limit")
    return ftype, length, crc


def decode_payload(body: bytes, crc: int) -> dict:
    """Checksum-validate and deserialize one frame payload."""
    if zlib.crc32(body) != crc:
        raise FrameError("corrupt frame: payload checksum mismatch")
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise FrameError(f"corrupt frame: payload does not decode ({exc})") \
            from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"corrupt frame: payload is {type(payload).__name__}, "
            f"expected a dict")
    return payload


async def read_frame(reader) -> tuple[int, dict]:
    """Read one complete frame from an :mod:`asyncio` stream reader.

    Raises :class:`FrameError` on validation failures and lets the
    stream's own ``IncompleteReadError``/``ConnectionError`` propagate
    for disconnects (including a mid-frame EOF, which simply never
    completes the read — a half-sent frame is discarded, the basis of
    the client's exactly-once retry).

    The payload decode (checksum + unpickle) runs in the loop's
    default executor: a BATCH frame can carry megabytes of columns,
    and unpickling it inline would stall the accept loop for every
    other connection — the exact failure mode the per-session worker
    threads exist to prevent."""
    header = await reader.readexactly(HEADER.size)
    ftype, length, crc = parse_header(header)
    body = await reader.readexactly(length)
    loop = asyncio.get_running_loop()
    return ftype, await loop.run_in_executor(None, decode_payload,
                                             body, crc)
