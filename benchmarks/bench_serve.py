"""PERF — live ingest service: bounded server memory under backpressure.

The ingest service's robustness headline is that a fast client cannot
inflate the server: per-session queues are bounded by byte watermarks,
and once the high watermark is hit the server answers ``BUSY`` and
stops reading that connection until the worker drains below the low
watermark.  This bench pins that down:

* **flat RSS** — the server phase runs in its own subprocess (so
  ``ru_maxrss`` is the server's alone) with a deliberately slow
  consumer (``ingest_delay``) and a small queue watermark, while the
  parent streams **10x the window budget** flat out; peak RSS after
  the full stream must stay ≤ 1.5x the steady-state peak recorded
  after the first window's worth of records;
* **backpressure observed** — the client must see ``BUSY`` frames
  (and matching ``READY`` resumes), and the server's exact-accounting
  metadata must agree;
* **bit-identical results** — the served report equals the one-shot
  ``run()`` of the same stream;
* **shed accounting is exact** — in shed mode every record is either
  ingested or counted dropped (``records_in + shed_records == sent``),
  and the executed report's access count equals ``records_in``.

``BENCH_serve.json`` at the repo root records the measured numbers.
The ``smoke`` tests replay a small stream through a real server +
client under one injected mid-frame disconnect and assert the result
is bit-identical to ``run()`` — CI runs only those.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import resource
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.network.records import ObservationTable
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.client import IngestClient
from repro.telemetry.faults import FaultInjector, FaultPlan
from repro.telemetry.runtime import QueryEngine

QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip"
GEOMETRY = CacheGeometry.set_associative(1 << 10, ways=8)
WINDOW = 1 << 15
N_WINDOWS = 10
BATCH = 4096
FLOWS = 20_000
SEED = 2016_08

# slow-consumer knobs: the worker naps per batch while the queue may
# hold at most ~2 batches before the high watermark trips.
QUEUE_HIGH = 2 * 6 * 8 * BATCH          # ~2 batches of 6 int64 columns
INGEST_DELAY = 0.003

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def make_batch(i: int, size: int, flows: int = FLOWS) -> ObservationTable:
    """Deterministic columnar batch ``i`` of a heavy-tailed flow
    stream — parent and differential baseline rebuild identical
    batches, so neither has to hold the whole stream."""
    rng = np.random.default_rng(SEED + i)
    flow = rng.zipf(1.2, size).astype(np.int64) % flows
    tin = np.arange(i * size, (i + 1) * size, dtype=np.int64) * 100
    return ObservationTable.from_arrays({
        "srcip": 0x0A000000 + flow,
        "dstip": 0x0B000000 + (flow * 7 + 3) % flows,
        "srcport": 1000 + (flow % 53),
        "pkt_len": rng.integers(64, 1500, size),
        "tin": tin,
        "tout": (tin + rng.integers(1000, 9000, size)).astype(np.float64),
    })


def _concat(batches: list[ObservationTable]) -> ObservationTable:
    return ObservationTable.from_arrays({
        name: np.concatenate([b.columns()[name] for b in batches])
        for name in batches[0].columns()
    })


def _engine() -> QueryEngine:
    return QueryEngine(QUERY, geometry=GEOMETRY)


def _result_fingerprint(report) -> tuple:
    table = report.result
    return (len(table),
            int(sum(table.column("COUNT"))),
            int(sum(table.column("SUM(pkt_len)"))))


def _peak_rss_mb() -> float:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":       # bytes on macOS, KiB on Linux
        peak //= 1024
    return round(peak / 1024, 1)


# -- server phase (runs in its own spawn process) -----------------------------

def _serve_phase(done, out) -> None:
    """Host the ingest service and sample its own peak RSS: once after
    one window budget has been ingested (steady state), once after the
    parent finished streaming 10x that."""
    server = _engine().serve(window=WINDOW, queue_high_bytes=QUEUE_HIGH,
                             ingest_delay=INGEST_DELAY)
    host, port = server.start()
    out["port"] = port
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        served = server._sessions.get("bench")
        if served is not None and served.records_in >= WINDOW:
            break
        if "bench" in server._final:        # stream outran the poll
            break
        time.sleep(0.002)
    out["rss_steady_mb"] = _peak_rss_mb()
    done.wait(300.0)
    report = server.stop()
    out["rss_total_mb"] = _peak_rss_mb()
    meta = report["sessions"].get("bench", {})
    out["server_meta"] = {k: v for k, v in meta.get("serve", meta).items()
                          if not isinstance(v, (bytes, bytearray))}


def _stream_against_server(port: int) -> tuple[dict, dict]:
    """Stream the full 10x-window budget flat out; returns the final
    close payload and the client-side counters."""
    client = IngestClient(("127.0.0.1", port), session="bench",
                          io_timeout=120.0)
    client.connect()
    for i in range(N_WINDOWS * WINDOW // BATCH):
        client.send(make_batch(i, BATCH))
    final = client.close_session()
    client.disconnect()
    counters = {"busy_events": client.busy_events,
                "ready_events": client.ready_events,
                "reconnects": client.reconnects}
    return final, counters


# -- smoke (CI): served result ≡ run() under one injected disconnect ----------

def test_smoke_served_matches_run_with_disconnect():
    """A real server + client on localhost, one mid-frame disconnect
    injected into the stream, a queue small enough to force BUSY — the
    final report must be bit-identical to the one-shot ``run()``."""
    batches = [make_batch(i, 256) for i in range(6)]
    server = _engine().serve(window=512, queue_high_bytes=20_000,
                             queue_low_bytes=5_000, ingest_delay=0.01)
    host, port = server.start()
    try:
        injector = FaultInjector(FaultPlan(disconnect_sends={3}))
        client = IngestClient(("127.0.0.1", port), session="smoke",
                              faults=injector, retry_seed=7)
        client.connect()
        for batch in batches:
            client.send(batch)
        final = client.close_session()
        client.disconnect()
    finally:
        server.stop()
    assert client.reconnects >= 1, "injected disconnect never fired"
    expected = _engine().run(_concat(batches))
    assert _result_fingerprint(final["report"]) == \
        _result_fingerprint(expected)
    meta = final["serve"]
    assert meta["records_in"] == 6 * 256
    assert meta["shed_batches"] == 0


def test_smoke_shed_accounting_exact():
    """Shed mode on a tiny overloaded server: every record is either
    ingested or counted dropped, and the executed report agrees."""
    batches = [make_batch(100 + i, 256) for i in range(8)]
    server = _engine().serve(window=512, shed=True, queue_high_bytes=6_000,
                             ingest_delay=0.05)
    host, port = server.start()
    try:
        client = IngestClient(("127.0.0.1", port), session="shed")
        client.connect()
        for batch in batches:
            client.send(batch)
        final = client.close_session()
        client.disconnect()
    finally:
        server.stop()
    meta = final["serve"]
    assert meta["shed_batches"] == client.shed_batches > 0
    assert meta["records_in"] + meta["shed_records"] == 8 * 256
    assert meta["batches_in"] + meta["shed_batches"] == 8
    stats = next(iter(final["report"].cache_stats.values()))
    assert stats.accesses == meta["records_in"]
    assert client.busy_events == 0, "shed mode must never send BUSY"


# -- perf: flat RSS while a fast client streams 10x the window budget ---------

@pytest.fixture(scope="module")
def serve_bench(report):
    ctx = mp.get_context("spawn")
    with ctx.Manager() as manager:
        out = manager.dict()
        done = manager.Event()
        proc = ctx.Process(target=_serve_phase, args=(done, out))
        proc.start()
        try:
            deadline = time.monotonic() + 60.0
            while "port" not in out.keys() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert "port" in out.keys(), "server phase never came up"
            t0 = time.perf_counter()
            final, counters = _stream_against_server(out["port"])
            stream_seconds = time.perf_counter() - t0
            done.set()
            proc.join(120)
            assert proc.exitcode == 0, "server phase crashed"
            measured = dict(out)
        finally:
            done.set()
            if proc.is_alive():
                proc.terminate()
                proc.join(10)

    total = N_WINDOWS * WINDOW
    expected = _engine().run(_concat(
        [make_batch(i, BATCH) for i in range(total // BATCH)]))
    payload = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "query": QUERY,
        "window": WINDOW,
        "records_streamed": total,
        "batch_records": BATCH,
        "queue_high_bytes": QUEUE_HIGH,
        "ingest_delay_s": INGEST_DELAY,
        "stream_seconds": round(stream_seconds, 2),
        "rss_steady_mb": measured["rss_steady_mb"],
        "rss_total_mb": measured["rss_total_mb"],
        "rss_ratio": round(
            measured["rss_total_mb"] / measured["rss_steady_mb"], 3),
        "client": counters,
        "server_meta": measured["server_meta"],
        "result_fingerprint": list(_result_fingerprint(final["report"])),
        "matches_one_shot": (_result_fingerprint(final["report"])
                             == _result_fingerprint(expected)),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    report("serve: bounded RSS under 10x-window backpressure",
           f"steady {payload['rss_steady_mb']} MB -> "
           f"peak {payload['rss_total_mb']} MB "
           f"(ratio {payload['rss_ratio']}), "
           f"{counters['busy_events']} BUSY / "
           f"{counters['ready_events']} READY over "
           f"{total} records in {payload['stream_seconds']}s")
    return payload


def test_serve_rss_stays_flat(serve_bench):
    """10x the window budget through a slow consumer must not inflate
    the server: peak RSS ≤ 1.5x the steady-state peak."""
    assert serve_bench["rss_ratio"] <= 1.5, (
        f"server RSS grew {serve_bench['rss_ratio']}x while streaming "
        f"10x the window budget (steady {serve_bench['rss_steady_mb']} MB, "
        f"peak {serve_bench['rss_total_mb']} MB)")


def test_serve_backpressure_observed(serve_bench):
    """The fast client must actually have been paused — BUSY frames on
    the client and matching counts in the server's accounting."""
    assert serve_bench["client"]["busy_events"] > 0
    assert serve_bench["client"]["ready_events"] >= \
        serve_bench["client"]["busy_events"]
    assert serve_bench["server_meta"]["busy_events"] == \
        serve_bench["client"]["busy_events"]


def test_serve_results_match_one_shot(serve_bench):
    """Backpressure must not cost correctness: the served report is
    bit-identical to ``run()`` on the same stream."""
    assert serve_bench["matches_one_shot"]
    assert serve_bench["server_meta"]["records_in"] == \
        serve_bench["records_streamed"]
    assert serve_bench["server_meta"]["shed_batches"] == 0
