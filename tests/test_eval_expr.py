"""Expression-evaluator tests: semantics shared by interpreter, ALU,
and merge runtime."""

import math

import pytest

from repro.core.ast_nodes import (
    BinOp,
    Call,
    ColumnRef,
    Cond,
    FieldRef,
    Name,
    Number,
    ParamRef,
    StateRef,
    UnaryOp,
)
from repro.core.errors import InterpreterError
from repro.core.eval_expr import EvalContext, evaluate, evaluate_predicate

from tests.conftest import make_record


def ev(expr, **ctx):
    return evaluate(expr, EvalContext(**ctx))


class TestLeaves:
    def test_number(self):
        assert ev(Number(42)) == 42

    def test_field_from_record(self):
        assert ev(FieldRef("pkt_len"), row=make_record(pkt_len=99)) == 99

    def test_field_from_mapping(self):
        assert ev(FieldRef("x"), row={"x": 7}) == 7

    def test_column_qualified(self):
        ctx = EvalContext(qualified_rows={"R1": {"COUNT": 5}})
        assert evaluate(ColumnRef("COUNT", table="R1"), ctx) == 5

    def test_state_var(self):
        assert ev(StateRef("s"), state={"s": 3.5}) == 3.5

    def test_param(self):
        assert ev(ParamRef("alpha"), params={"alpha": 0.5}) == 0.5

    def test_missing_field_raises(self):
        with pytest.raises(InterpreterError):
            ev(FieldRef("nope"), row={"x": 1})

    def test_missing_param_raises_with_name(self):
        with pytest.raises(InterpreterError) as excinfo:
            ev(ParamRef("gamma"))
        assert "gamma" in str(excinfo.value)

    def test_unresolved_name_rejected(self):
        with pytest.raises(InterpreterError):
            ev(Name("raw"))


class TestOperators:
    def test_comparisons_return_int(self):
        result = ev(BinOp("<", Number(1), Number(2)))
        assert result == 1 and isinstance(result, int)

    def test_division_is_true_division(self):
        assert ev(BinOp("/", Number(1), Number(4))) == 0.25

    def test_boolean_short_circuit_and(self):
        # Right side would divide by zero; `and` must short-circuit.
        expr = BinOp("and", Number(0), BinOp("/", Number(1), Number(0)))
        assert ev(expr) == 0

    def test_boolean_short_circuit_or(self):
        expr = BinOp("or", Number(1), BinOp("/", Number(1), Number(0)))
        assert ev(expr) == 1

    def test_not(self):
        assert ev(UnaryOp("not", Number(0))) == 1
        assert ev(UnaryOp("not", Number(5))) == 0

    def test_negation(self):
        assert ev(UnaryOp("-", Number(3))) == -3

    def test_infinity_comparison(self):
        expr = BinOp("==", FieldRef("tout"), Number(math.inf))
        assert ev(expr, row=make_record(tout=math.inf)) == 1

    def test_cond_branches(self):
        expr = Cond(BinOp(">", StateRef("s"), Number(0)), Number(10), Number(20))
        assert ev(expr, state={"s": 1}) == 10
        assert ev(expr, state={"s": -1}) == 20

    def test_builtin_calls(self):
        assert ev(Call("max", (Number(3), Number(7)))) == 7
        assert ev(Call("min", (Number(3), Number(7)))) == 3
        assert ev(Call("abs", (Number(-4),))) == 4


class TestPredicates:
    def test_none_is_pass_all(self):
        assert evaluate_predicate(None, EvalContext())

    def test_truthiness(self):
        ctx = EvalContext(row=make_record(pkt_len=100))
        assert evaluate_predicate(BinOp(">", FieldRef("pkt_len"), Number(50)), ctx)
        assert not evaluate_predicate(BinOp(">", FieldRef("pkt_len"), Number(500)), ctx)
