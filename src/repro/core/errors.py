"""Exception hierarchy for the performance-query language toolchain.

Every error raised by the lexer, parser, semantic analyser, linearity
analysis, compiler, or interpreter derives from :class:`QueryError`, so
callers can catch one type to handle "the query is bad" uniformly while
still being able to discriminate the phase that rejected it.
"""

from __future__ import annotations


class QueryError(Exception):
    """Base class for all errors produced by the query toolchain."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is not None:
            loc = f"line {self.line}"
            if self.column is not None:
                loc += f", col {self.column}"
            return f"{loc}: {self.message}"
        return self.message


class LexError(QueryError):
    """Raised when the source text contains characters or tokens that the
    lexer cannot form into a token stream."""


class ParseError(QueryError):
    """Raised when the token stream does not match the Fig. 1 grammar."""


class SemanticError(QueryError):
    """Raised when a syntactically valid query violates a static rule:
    unknown fields, arity mismatches in fold functions, joins whose key
    does not uniquely identify records, cyclic query references, etc."""


class CompileError(QueryError):
    """Raised when a semantically valid query cannot be lowered onto the
    switch hardware model (e.g. value layout exceeds configured width)."""


class LinearityError(QueryError):
    """Raised when the linearity analysis is asked to synthesise a merge
    function for a fold that is not linear in state."""


class InterpreterError(QueryError):
    """Raised on runtime evaluation failures in the reference interpreter
    (e.g. a query parameter without a binding)."""


class HardwareError(Exception):
    """Base class for errors in the switch hardware model (not query bugs):
    invalid cache geometry, value wider than the configured slot, etc."""


class SessionError(Exception):
    """Base class for telemetry-session misuse: operations that the
    session's configuration cannot honour (e.g. a mid-stream result
    snapshot on the deferred one-shot vector store, which needs the
    whole stream before it can execute its schedule)."""


class SessionClosedError(SessionError):
    """Raised when a closed :class:`~repro.telemetry.session.TelemetrySession`
    is asked to ingest more observations (or to close again)."""


class CheckpointError(SessionError):
    """Raised when a session snapshot cannot be produced or restored:
    truncated/corrupted/wrong-version checkpoint bytes, or a resume
    against an engine whose configuration does not match the one that
    produced the snapshot."""
