"""repro — reproduction of *Hardware-Software Co-Design for Network
Performance Measurement* (Narayana et al., HotNets-XV 2016).

The package implements both halves of the paper's co-design:

* :mod:`repro.core` — the declarative performance query language
  (parser, semantic analysis, the linear-in-state analysis, merge
  synthesis, a query compiler, and a reference interpreter);
* :mod:`repro.switch` — the switch hardware model (programmable
  parser, match-action pipeline, the split SRAM/DRAM key-value store,
  and the §3.3/§4 area model);

plus the substrates the evaluation needs:

* :mod:`repro.network` — an event-driven queueing simulator producing
  the paper's packet-observation table;
* :mod:`repro.traffic` — CAIDA-like, datacenter, and incast workload
  generators with TCP anomaly injection;
* :mod:`repro.queries` — the Fig. 2 query catalog;
* :mod:`repro.telemetry` — the end-to-end runtime (compile → install →
  stream → collect);
* :mod:`repro.analysis` — the Fig. 5 / Fig. 6 experiment drivers.

Quickstart::

    from repro import QueryEngine, CacheGeometry
    from repro.traffic.datacenter import DatacenterWorkload

    table = DatacenterWorkload().observation_table()
    engine = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
                         geometry=CacheGeometry.set_associative(4096, ways=8))
    report = engine.run(table)
    for row in report.result.rows[:5]:
        print(row)
"""

from .core.compiler import CompileOptions, compile_program
from .core.interpreter import Interpreter, ResultTable, run_query
from .core.linearity import analyze_fold
from .core.parser import parse_program, parse_query
from .core.semantics import resolve_program
from .network.records import ObservationTable, PacketRecord
from .switch.kvstore.cache import CacheGeometry
from .switch.pipeline import SwitchPipeline
from .telemetry.runtime import QueryEngine, RunReport, run

__version__ = "0.1.0"

__all__ = [
    "CacheGeometry",
    "CompileOptions",
    "Interpreter",
    "ObservationTable",
    "PacketRecord",
    "QueryEngine",
    "ResultTable",
    "RunReport",
    "SwitchPipeline",
    "analyze_fold",
    "compile_program",
    "parse_program",
    "parse_query",
    "resolve_program",
    "run",
    "run_query",
    "__version__",
]
