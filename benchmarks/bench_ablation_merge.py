"""A-2 — merge-strategy ablation and overhead.

Quantifies what each §3.2 merge strategy costs in the data path and
what it buys in the backing store:

* **additive** (counters): no aux state, exact;
* **scale** (EWMA): one product register per variable, exact;
* **matrix** (cross-coupled states): k² product registers, exact;
* **list** (non-linear): no merge — valid keys only;
* **exact-history** (outofseq with replay log): small per-entry log,
  upgrades a bounded-error fold to exact.

The table reports per-packet processing time through the full split
store and result fidelity vs ground truth at high eviction pressure.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.compiler import CompileOptions, compile_program
from repro.core.interpreter import Interpreter
from repro.core.parser import parse_program
from repro.core.semantics import resolve_program
from repro.switch.kvstore.cache import CacheGeometry
from repro.switch.pipeline import SwitchPipeline
from repro.telemetry.results import compare_tables

GEOMETRY = CacheGeometry.set_associative(16, ways=4)   # heavy eviction


def interleaved_trace(n_packets: int = 20_000, n_flows: int = 60,
                      seed: int = 11):
    """Adversarially interleaved flows: every flow stays active for the
    whole trace, so a 16-pair cache must constantly evict — the regime
    that stresses the merge machinery."""
    import random

    from repro.network.records import PacketRecord

    rng = random.Random(seed)
    records = []
    seqs = {}
    t = 0
    for i in range(n_packets):
        flow = rng.randrange(n_flows)
        t += rng.randrange(5, 50)
        payload = rng.choice([0, 100, 1460])
        seq = seqs.get(flow, 1000)
        seqs[flow] = seq + payload + 1
        records.append(PacketRecord(
            srcip=flow, dstip=1, srcport=flow, dstport=80, proto=6,
            pkt_len=payload + 40, payload_len=payload, tcpseq=seq,
            pkt_id=i, qid=0, tin=t, tout=float(t + rng.randrange(50, 5000)),
            qin=rng.randrange(0, 32), qout=0, qsize=0, pkt_path=0))
    return records

CASES = {
    "additive (COUNT+SUM)": (
        "SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple", {}, False),
    "scale (EWMA)": (
        "def ewma (e, (tin, tout)): e = (1 - alpha) * e + alpha * (tout - tin)\n"
        "SELECT 5tuple, ewma GROUPBY 5tuple", {"alpha": 0.2}, False),
    "matrix (coupled)": (
        "def f ((a, b), pkt_len):\n"
        "    a = a + b\n"
        "    b = b + pkt_len\n"
        "SELECT 5tuple, f GROUPBY 5tuple", {}, False),
    "list (nonmt)": (
        "def nonmt ((maxseq, nm), tcpseq):\n"
        "    if maxseq > tcpseq: nm = nm + 1\n"
        "    maxseq = max(maxseq, tcpseq)\n"
        "SELECT 5tuple, nonmt GROUPBY 5tuple", {}, False),
    "exact-history (outofseq)": (
        "def outofseq ((lastseq, oos), (tcpseq, payload_len)):\n"
        "    if lastseq + 1 != tcpseq: oos = oos + 1\n"
        "    lastseq = tcpseq + payload_len\n"
        "SELECT 5tuple, outofseq GROUPBY 5tuple", {}, True),
}


def run_case(source, params, exact_history, records):
    rp = resolve_program(parse_program(source))
    program = compile_program(rp, CompileOptions(exact_history=exact_history))
    pipeline = SwitchPipeline(program, params=params, geometry=GEOMETRY)
    pipeline.run(records)
    return rp, program, pipeline


@pytest.fixture(scope="module")
def ablation(report):
    records = interleaved_trace()
    rows = []
    for label, (source, params, exact_history) in CASES.items():
        import time
        rp, program, pipeline = None, None, None
        start = time.perf_counter()
        rp, program, pipeline = run_case(source, params, exact_history, records)
        elapsed = time.perf_counter() - start
        stage = program.groupby_stages[0]
        store = pipeline.store_for(rp.result)
        truth = Interpreter(rp, params=params).run_result(records)
        hardware = pipeline.results()[rp.result]
        diff = compare_tables(hardware, truth, rel_tol=1e-6)
        if stage.mergeable:
            fidelity = "exact" if diff.exact else f"{diff.cell_accuracy:.1%}"
        else:
            fidelity = f"{store.accuracy():.1%} keys valid"
        rows.append([
            label,
            stage.folds[0].merge.strategy,
            stage.value.aux_bits,
            f"{1e9 * elapsed / len(records):,.0f}",
            f"{100 * store.stats.eviction_fraction:.1f}%",
            fidelity,
        ])
    text = format_table(
        ["fold", "strategy", "aux bits", "ns/pkt", "evict%", "fidelity"],
        rows,
        title=f"A-2 — merge strategies at heavy eviction "
              f"({GEOMETRY.describe()}, {len(records)} pkts)",
    )
    report("A-2: merge-strategy ablation", text)
    return rows


def test_all_mergeable_strategies_exact(ablation):
    for row in ablation:
        if row[1] in ("additive", "scale", "matrix"):
            assert row[5] == "exact", row
        if row[0].startswith("exact-history"):
            assert row[5] == "exact", row


def test_aux_cost_ordering(ablation):
    by_label = {row[0]: row for row in ablation}
    assert by_label["additive (COUNT+SUM)"][2] == 0
    assert by_label["scale (EWMA)"][2] > 0
    assert by_label["matrix (coupled)"][2] > by_label["scale (EWMA)"][2]


@pytest.mark.parametrize("label", list(CASES), ids=list(CASES))
def test_strategy_throughput(benchmark, small_trace, label, ablation):
    source, params, exact_history = CASES[label]
    records = small_trace.records[:5000]

    def run():
        return run_case(source, params, exact_history, records)

    rp, _program, pipeline = benchmark.pedantic(run, rounds=3, iterations=1)
    assert pipeline.packets_seen == len(records)
