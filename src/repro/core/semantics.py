"""Semantic analysis for performance queries.

Takes the parser's :class:`~repro.core.ast_nodes.Program` and produces a
:class:`ResolvedProgram` in which

* every identifier is resolved (packet field, state variable, upstream
  result column, query parameter, or named constant),
* every aggregation — user fold or ``COUNT``/``SUM``/... sugar — is
  instantiated as a :class:`FoldInstance` with its body rewritten over
  the query's input row,
* every query has a computed output :class:`TableSchema`, and
* the static rules of §2 are enforced, most importantly the join-key
  safety condition (footnote 3): a ``JOIN ... ON key`` is accepted only
  when both inputs are grouped tables whose grouping key equals the
  join key, which guarantees the key uniquely identifies records on
  both sides.

The ``WHERE`` clause uniformly filters the *input* records of a query
(packets for queries on ``T``, rows for queries on upstream results);
this matches every example in the paper, e.g. ``WHERE proto == TCP``
pre-filters packets while ``WHERE lat > L`` filters the rows of ``R1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from . import schema as sch
from .ast_nodes import (
    Assign,
    BinOp,
    Call,
    Cond,
    Dotted,
    Expr,
    FieldRef,
    FoldDef,
    If,
    JoinQuery,
    Name,
    Number,
    ColumnRef,
    ParamRef,
    Program,
    Query,
    SelectItem,
    SelectQuery,
    Star,
    StateRef,
    Stmt,
    UnaryOp,
    format_expr,
)
from .builtins import AGGREGATE_SUGAR, ARG, make_sugar_fold, sugar_column_name
from .errors import SemanticError

#: Scalar builtin functions allowed anywhere in expressions.
SCALAR_BUILTINS = frozenset({"max", "min", "abs"})

#: Name of the implicit base table of packet observations.
BASE_TABLE = "T"

#: Default bit width for fold state variables (value layout); the §4
#: evaluation uses a 24-bit counter, which the compiler configures
#: explicitly for COUNT-style folds.
DEFAULT_STATE_BITS = 32


# ---------------------------------------------------------------------------
# Resolved structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FoldInstance:
    """A fold function instantiated inside one ``GROUPBY`` query.

    ``body`` is the fold body with state variables rewritten to
    :class:`StateRef` and packet parameters substituted by their bound
    input expressions (over :class:`FieldRef`/:class:`ColumnRef`).
    """

    column: str                      # base output-column name
    fold_name: str                   # original fold or sugar name
    state_vars: tuple[str, ...]
    inits: dict[str, int | float]
    body: tuple[Stmt, ...]
    read_expr: Expr | None = None    # derived read-time value (e.g. AVG)

    def initial_state(self) -> dict[str, int | float]:
        return {v: self.inits.get(v, 0) for v in self.state_vars}


@dataclass(frozen=True)
class Column:
    """One output column of a query result table."""

    name: str
    kind: str                        # "field" | "key" | "agg" | "expr" | "derived"
    dtype: str = "float"
    bits: int = DEFAULT_STATE_BITS
    source: str | None = None        # key/field: concrete input column name
    fold: str | None = None          # agg/derived: owning FoldInstance column
    state_var: str | None = None     # agg: which state variable
    expr: Expr | None = None         # expr: resolved over the input row
    read_expr: Expr | None = None    # derived: over this fold's StateRefs
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class TableSchema:
    """Schema of a query result (or of the base observation table)."""

    name: str
    keyed: bool
    key_columns: tuple[str, ...]
    columns: tuple[Column, ...]

    def column_index(self) -> dict[str, Column]:
        """Name → column map including unambiguous aliases."""
        index: dict[str, Column] = {}
        ambiguous: set[str] = set()
        for col in self.columns:
            index[col.name] = col
        for col in self.columns:
            for alias in col.aliases:
                if alias in index and index[alias] is not col:
                    ambiguous.add(alias)
                else:
                    index[alias] = col
        for name in ambiguous:
            if all(c.name != name for c in self.columns):
                del index[name]
        return index

    def resolve(self, name: str) -> Column | None:
        return self.column_index().get(name)

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)


@dataclass(frozen=True)
class ResolvedQuery:
    """A fully resolved query node."""

    name: str
    kind: str                                  # "select" | "groupby" | "join"
    source: str | None                         # upstream query name; None = base table
    join_left: str | None = None
    join_right: str | None = None
    join_on: tuple[str, ...] = ()
    where: Expr | None = None                  # over the input row
    groupby_keys: tuple[str, ...] = ()         # concrete input column names
    folds: tuple[FoldInstance, ...] = ()
    output: TableSchema = None                 # type: ignore[assignment]
    select_exprs: tuple[Column, ...] = ()      # expr-kind output columns


@dataclass(frozen=True)
class ResolvedProgram:
    """A resolved program: queries in dependency order plus metadata."""

    queries: tuple[ResolvedQuery, ...]
    result: str
    params: frozenset[str]
    source: Program

    def by_name(self, name: str) -> ResolvedQuery:
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError(name)

    def result_query(self) -> ResolvedQuery:
        return self.by_name(self.result)


def base_table_schema() -> TableSchema:
    """Schema of the packet-observation table ``T`` (paper §2)."""
    columns = tuple(
        Column(name=f.name, kind="field", dtype=f.dtype, bits=f.bits, source=f.name)
        for f in sch.FIELDS
    )
    return TableSchema(name=BASE_TABLE, keyed=False, key_columns=(), columns=columns)


# ---------------------------------------------------------------------------
# Expression resolution
# ---------------------------------------------------------------------------


@dataclass
class Scope:
    """Resolution context for one expression.

    ``table`` is ``None`` when the input is the raw packet stream;
    ``tables`` is populated instead inside a join.  ``state_vars`` and
    ``packet_bindings`` are set only inside fold bodies.
    """

    table: TableSchema | None = None
    tables: dict[str, TableSchema] | None = None
    state_vars: frozenset[str] = frozenset()
    packet_bindings: dict[str, Expr] = field(default_factory=dict)
    params: set[str] = field(default_factory=set)

    @property
    def is_base(self) -> bool:
        return self.table is None and self.tables is None


class Resolver:
    """Resolves one program; stateless between programs."""

    def __init__(self, program: Program):
        self.program = program
        self.schemas: dict[str, TableSchema] = {}
        self.resolved: list[ResolvedQuery] = []
        self.params: set[str] = set()

    # -- entry point -------------------------------------------------------

    def run(self) -> ResolvedProgram:
        for name, query in self.program.queries.items():
            self.resolved.append(self._resolve_query(name, query))
            self.schemas[name] = self.resolved[-1].output
        return ResolvedProgram(
            queries=tuple(self.resolved),
            result=self.program.result,
            params=frozenset(self.params),
            source=self.program,
        )

    # -- helpers -------------------------------------------------------------

    def _input_schema(self, source: str | None) -> TableSchema | None:
        """Schema of a query's input; ``None`` means the base table."""
        if source is None or source == BASE_TABLE:
            return None
        if source not in self.schemas:
            raise SemanticError(
                f"query references {source!r} which is not defined earlier"
            )
        return self.schemas[source]

    def _expand_key(self, key: str, table: TableSchema | None) -> tuple[str, ...]:
        """Expand a grouping/join key name to concrete column names."""
        if table is None:
            if not sch.is_field(key):
                raise SemanticError(f"unknown field {key!r} in key list")
            return sch.expand_field(key)
        expanded = sch.FIELD_ALIASES.get(key)
        if expanded is not None:
            missing = [f for f in expanded if table.resolve(f) is None]
            if missing:
                raise SemanticError(
                    f"key {key!r} expands to columns missing from {table.name!r}: {missing}"
                )
            return expanded
        if table.resolve(key) is None:
            raise SemanticError(f"unknown column {key!r} in key list over {table.name!r}")
        return (table.resolve(key).name,)

    # -- expression resolution --------------------------------------------------

    def resolve_expr(self, expr: Expr, scope: Scope) -> Expr:
        """Resolve every name in ``expr`` against ``scope``."""
        if isinstance(expr, Number):
            return expr
        if isinstance(expr, Name):
            return self._resolve_name(expr.ident, scope)
        if isinstance(expr, Dotted):
            return self._resolve_dotted(expr, scope)
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self.resolve_expr(expr.left, scope),
                         self.resolve_expr(expr.right, scope))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.resolve_expr(expr.operand, scope))
        if isinstance(expr, Cond):
            return Cond(self.resolve_expr(expr.pred, scope),
                        self.resolve_expr(expr.then, scope),
                        self.resolve_expr(expr.orelse, scope))
        if isinstance(expr, Call):
            return self._resolve_call(expr, scope)
        if isinstance(expr, (FieldRef, StateRef, ParamRef, ColumnRef)):
            return expr  # already resolved (builder API)
        raise SemanticError(f"cannot resolve expression node {expr!r}")

    def _resolve_name(self, ident: str, scope: Scope) -> Expr:
        if ident in scope.state_vars:
            return StateRef(ident)
        if ident in scope.packet_bindings:
            return scope.packet_bindings[ident]
        if scope.is_base:
            if ident in sch.FIELD_ALIASES:
                raise SemanticError(
                    f"{ident!r} names {len(sch.expand_field(ident))} fields and cannot "
                    "be used as a scalar expression"
                )
            if sch.is_field(ident):
                return FieldRef(ident)
        elif scope.table is not None:
            col = scope.table.resolve(ident)
            if col is not None:
                return ColumnRef(col.name)
        elif scope.tables is not None:
            hits = [(tname, t.resolve(ident)) for tname, t in scope.tables.items()
                    if t.resolve(ident) is not None]
            if len(hits) == 1:
                tname, col = hits[0]
                return ColumnRef(col.name, table=tname)
            if len(hits) > 1:
                raise SemanticError(f"column {ident!r} is ambiguous across join inputs")
        if ident in sch.CONSTANTS:
            return Number(sch.CONSTANTS[ident])
        # Free names become query parameters (alpha, L, K in the paper).
        scope.params.add(ident)
        self.params.add(ident)
        return ParamRef(ident)

    def _resolve_dotted(self, expr: Dotted, scope: Scope) -> Expr:
        if scope.tables is not None and expr.base in scope.tables:
            table = scope.tables[expr.base]
            col = table.resolve(expr.attr)
            if col is None:
                raise SemanticError(f"table {expr.base!r} has no column {expr.attr!r}")
            return ColumnRef(col.name, table=expr.base)
        if scope.table is not None:
            col = scope.table.resolve(f"{expr.base}.{expr.attr}")
            if col is not None:
                return ColumnRef(col.name)
        raise SemanticError(f"cannot resolve {expr.base}.{expr.attr}")

    def _resolve_call(self, expr: Call, scope: Scope) -> Expr:
        if expr.func in SCALAR_BUILTINS:
            return Call(expr.func, tuple(self.resolve_expr(a, scope) for a in expr.args))
        if expr.func in AGGREGATE_SUGAR:
            # Outside a SELECT list, sugar refers to an upstream column:
            # ``WHERE SUM(tout-tin) > L`` over R1 names R1's SUM column.
            if scope.table is not None:
                canonical = sugar_column_name(expr.func, expr.args[0] if expr.args else None)
                col = scope.table.resolve(canonical)
                if col is not None:
                    return ColumnRef(col.name)
                raise SemanticError(
                    f"{canonical!r} does not name a column of {scope.table.name!r}"
                )
            raise SemanticError(
                f"aggregation {expr.func!r} is only allowed in a SELECT list "
                "or as a reference to an upstream aggregation column"
            )
        raise SemanticError(f"unknown function {expr.func!r}")

    # -- fold instantiation ------------------------------------------------------

    def _instantiate_fold(self, fold: FoldDef, column: str,
                          bindings: dict[str, Expr], scope: Scope) -> FoldInstance:
        """Rewrite ``fold``'s body over the query input row."""
        state_vars = frozenset(fold.state_params)
        body_scope = Scope(
            table=scope.table,
            tables=scope.tables,
            state_vars=state_vars,
            packet_bindings=bindings,
            params=scope.params,
        )
        body = tuple(self._resolve_stmt(s, body_scope, state_vars) for s in fold.body)
        read_expr = None
        if fold.name != column and len(fold.state_params) > 1:
            read_expr = None  # multi-var user folds expose per-var columns
        return FoldInstance(
            column=column,
            fold_name=fold.name,
            state_vars=fold.state_params,
            inits=dict(fold.inits),
            body=body,
            read_expr=read_expr,
        )

    def _resolve_stmt(self, stmt: Stmt, scope: Scope, state_vars: frozenset[str]) -> Stmt:
        if isinstance(stmt, Assign):
            if stmt.target not in state_vars:
                raise SemanticError(
                    f"assignment to {stmt.target!r} which is not a declared state "
                    f"variable of this fold"
                )
            return Assign(stmt.target, self.resolve_expr(stmt.value, scope))
        if isinstance(stmt, If):
            return If(
                pred=self.resolve_expr(stmt.pred, scope),
                then=tuple(self._resolve_stmt(s, scope, state_vars) for s in stmt.then),
                orelse=tuple(self._resolve_stmt(s, scope, state_vars) for s in stmt.orelse),
            )
        raise SemanticError(f"unknown statement {stmt!r}")

    def _bind_user_fold(self, fold: FoldDef, scope: Scope) -> dict[str, Expr]:
        """Bind a user fold's packet parameters by name to input columns."""
        bindings: dict[str, Expr] = {}
        for param in fold.packet_params:
            bindings[param] = self._resolve_name(param, scope)
            if isinstance(bindings[param], ParamRef):
                raise SemanticError(
                    f"fold {fold.name!r} consumes packet field {param!r}, which is not "
                    "a field/column of the query input"
                )
        return bindings

    # -- query resolution ---------------------------------------------------------

    def _resolve_query(self, name: str, query: Query) -> ResolvedQuery:
        if isinstance(query, SelectQuery):
            if query.groupby is not None:
                return self._resolve_groupby(name, query)
            return self._resolve_select(name, query)
        if isinstance(query, JoinQuery):
            return self._resolve_join(name, query)
        raise SemanticError(f"unknown query node {query!r}")

    # .. plain SELECT ..

    def _resolve_select(self, name: str, query: SelectQuery) -> ResolvedQuery:
        table = self._input_schema(query.source)
        scope = Scope(table=table, params=self.params)
        where = self.resolve_expr(query.where, scope) if query.where is not None else None

        columns: list[Column] = []
        if isinstance(query.items, Star):
            if table is None:
                columns = list(base_table_schema().columns)
                columns = [replace(c, kind="expr", expr=FieldRef(c.name)) for c in columns]
            else:
                columns = [
                    replace(c, kind="expr", expr=ColumnRef(c.name),
                            source=None, fold=None, state_var=None, read_expr=None)
                    if c.kind != "key" else replace(c, expr=ColumnRef(c.name))
                    for c in table.columns
                ]
        else:
            for item in query.items:
                columns.extend(self._select_item_columns(item, scope, table))

        # A filtered/projected keyed table stays keyed when all its key
        # columns survive the projection.
        keyed = False
        key_columns: tuple[str, ...] = ()
        if table is not None and table.keyed:
            names = {c.name for c in columns}
            if all(k in names for k in table.key_columns):
                keyed = True
                key_columns = table.key_columns
        output = TableSchema(name=name, keyed=keyed, key_columns=key_columns,
                             columns=tuple(columns))
        return ResolvedQuery(
            name=name, kind="select", source=self._canonical_source(query.source),
            where=where, output=output,
            select_exprs=tuple(c for c in columns if c.kind == "expr"),
        )

    def _select_item_columns(self, item: SelectItem, scope: Scope,
                             table: TableSchema | None) -> list[Column]:
        """Columns contributed by one plain-SELECT item."""
        expr = item.expr
        if isinstance(expr, Name) and expr.ident in sch.FIELD_ALIASES and scope.is_base:
            if item.alias:
                raise SemanticError(f"cannot alias multi-field {expr.ident!r}")
            return [
                Column(name=f, kind="expr", dtype=sch.FIELDS_BY_NAME[f].dtype,
                       bits=sch.FIELDS_BY_NAME[f].bits, expr=FieldRef(f))
                for f in sch.expand_field(expr.ident)
            ]
        if isinstance(expr, Name) and table is not None and expr.ident in sch.FIELD_ALIASES:
            return [
                Column(name=f, kind="expr", dtype="int",
                       bits=sch.FIELDS_BY_NAME[f].bits, expr=ColumnRef(f))
                for f in self._expand_key(expr.ident, table)
            ]
        resolved = self.resolve_expr(expr, scope)
        name = item.alias or self._derive_column_name(expr, resolved)
        dtype, bits = self._infer_type(resolved, table)
        return [Column(name=name, kind="expr", dtype=dtype, bits=bits, expr=resolved)]

    @staticmethod
    def _derive_column_name(original: Expr, resolved: Expr) -> str:
        if isinstance(resolved, FieldRef):
            return resolved.name
        if isinstance(resolved, ColumnRef):
            return resolved.name
        return format_expr(original)

    def _infer_type(self, expr: Expr, table: TableSchema | None) -> tuple[str, int]:
        """Crude dtype/bit-width inference for layout purposes."""
        if isinstance(expr, FieldRef):
            spec = sch.FIELDS_BY_NAME[expr.name]
            return spec.dtype, spec.bits
        if isinstance(expr, ColumnRef) and table is not None:
            col = table.resolve(expr.name)
            if col is not None:
                return col.dtype, col.bits
        if isinstance(expr, Number):
            return ("int", 64) if isinstance(expr.value, int) else ("float", 64)
        if isinstance(expr, BinOp) and expr.op == "/":
            return "float", 64
        if isinstance(expr, BinOp) and expr.op in ("==", "!=", "<", "<=", ">", ">=",
                                                   "and", "or"):
            return "int", 1
        return "float", 64

    # .. GROUPBY ..

    def _resolve_groupby(self, name: str, query: SelectQuery) -> ResolvedQuery:
        table = self._input_schema(query.source)
        scope = Scope(table=table, params=self.params)
        where = self.resolve_expr(query.where, scope) if query.where is not None else None

        assert query.groupby is not None
        keys: list[str] = []
        for key in query.groupby:
            keys.extend(self._expand_key(key, table))
        if len(set(keys)) != len(keys):
            raise SemanticError(f"duplicate GROUPBY key in {keys}")

        columns: list[Column] = [
            Column(name=k, kind="key", source=k,
                   dtype=self._key_dtype(k, table), bits=self._key_bits(k, table))
            for k in keys
        ]
        folds: list[FoldInstance] = []

        if isinstance(query.items, Star):
            raise SemanticError("SELECT * is not meaningful in a GROUPBY query")
        for item in query.items:
            expr = item.expr
            # Key fields (possibly multi-field aliases) pass through.
            if isinstance(expr, Name) and self._is_key_item(expr.ident, keys, table):
                continue  # keys are always emitted; listing them is allowed
            fold_cols, fold = self._group_item(expr, item.alias, scope, table)
            if fold is not None:
                folds.append(fold)
            columns.extend(fold_cols)

        # Register bare state-variable aliases when unambiguous
        # (``WHERE lat > L`` refers to sum_lat's only state variable).
        output = TableSchema(name=name, keyed=True, key_columns=tuple(keys),
                             columns=tuple(columns))
        return ResolvedQuery(
            name=name, kind="groupby", source=self._canonical_source(query.source),
            where=where, groupby_keys=tuple(keys), folds=tuple(folds), output=output,
        )

    def _is_key_item(self, ident: str, keys: list[str], table: TableSchema | None) -> bool:
        try:
            expanded = self._expand_key(ident, table)
        except SemanticError:
            return False
        if ident in self.program.folds:
            return False
        return all(k in keys for k in expanded)

    def _key_dtype(self, key: str, table: TableSchema | None) -> str:
        if table is None:
            return sch.FIELDS_BY_NAME[key].dtype
        col = table.resolve(key)
        return col.dtype if col else "int"

    def _key_bits(self, key: str, table: TableSchema | None) -> int:
        if table is None:
            return sch.FIELDS_BY_NAME[key].bits
        col = table.resolve(key)
        return col.bits if col else DEFAULT_STATE_BITS

    def _group_item(self, expr: Expr, alias: str | None, scope: Scope,
                    table: TableSchema | None) -> tuple[list[Column], FoldInstance | None]:
        """Columns + fold instance for a non-key GROUPBY select item."""
        # User-defined fold reference.
        if isinstance(expr, Name) and expr.ident in self.program.folds:
            fold_def = self.program.folds[expr.ident]
            bindings = self._bind_user_fold(fold_def, scope)
            column = alias or fold_def.name
            instance = self._instantiate_fold(fold_def, column, bindings, scope)
            return self._fold_columns(instance, fold_def), instance

        # Aggregation sugar: bare COUNT or CALL form.
        func: str | None = None
        arg: Expr | None = None
        if isinstance(expr, Name) and expr.ident in AGGREGATE_SUGAR:
            func = expr.ident
        elif isinstance(expr, Call) and expr.func in AGGREGATE_SUGAR:
            func = expr.func
            if len(expr.args) != 1:
                raise SemanticError(f"{func} takes exactly one argument")
            arg = expr.args[0]
        if func is not None:
            if func != "COUNT" and arg is None:
                raise SemanticError(f"{func} requires an argument")
            if func == "COUNT" and arg is not None:
                raise SemanticError("COUNT takes no argument")
            column = alias or sugar_column_name(func, arg)
            fold_def = make_sugar_fold(func, column)
            bindings: dict[str, Expr] = {}
            if arg is not None:
                bindings[ARG] = self.resolve_expr(arg, scope)
            instance = self._instantiate_fold(fold_def, column, bindings, scope)
            if func == "AVG":
                sum_var, cnt_var = fold_def.state_params
                instance = replace(
                    instance,
                    read_expr=BinOp("/", StateRef(sum_var), StateRef(cnt_var)),
                )
                cols = [
                    Column(name=column, kind="derived", dtype="float", bits=64,
                           fold=column, read_expr=instance.read_expr),
                    Column(name=f"{column}.sum", kind="agg", fold=column,
                           state_var=sum_var, dtype="float", bits=DEFAULT_STATE_BITS),
                    Column(name=f"{column}.count", kind="agg", fold=column,
                           state_var=cnt_var, dtype="int", bits=DEFAULT_STATE_BITS),
                ]
                return cols, instance
            state_var = fold_def.state_params[0]
            col = Column(name=column, kind="agg", fold=column, state_var=state_var,
                         dtype="float" if func in ("SUM", "AVG") else "int",
                         bits=DEFAULT_STATE_BITS)
            return [col], instance

        raise SemanticError(
            f"GROUPBY select item {format_expr(expr)!r} must be a grouping key, "
            "a fold function, or aggregation sugar (COUNT/SUM/AVG/MAX/MIN)"
        )

    def _fold_columns(self, instance: FoldInstance, fold_def: FoldDef) -> list[Column]:
        """Output columns for a user fold: one per state variable.

        Single-variable folds export the variable under its own name
        with the fold name as alias (the paper writes both ``lat`` and
        ``perc.high``); multi-variable folds export ``fold.var`` columns
        with the bare variable name as alias.
        """
        cols: list[Column] = []
        if len(instance.state_vars) == 1:
            var = instance.state_vars[0]
            cols.append(Column(
                name=var, kind="agg", fold=instance.column, state_var=var,
                dtype="float", bits=DEFAULT_STATE_BITS,
                aliases=(instance.column,) if instance.column != var else (),
            ))
            return cols
        for var in instance.state_vars:
            cols.append(Column(
                name=f"{instance.column}.{var}", kind="agg", fold=instance.column,
                state_var=var, dtype="float", bits=DEFAULT_STATE_BITS,
                aliases=(var,),
            ))
        return cols

    # .. JOIN ..

    def _resolve_join(self, name: str, query: JoinQuery) -> ResolvedQuery:
        left = self._input_schema(query.left)
        right = self._input_schema(query.right)
        if left is None or right is None:
            raise SemanticError("JOIN inputs must be named upstream queries, not T")

        on: list[str] = []
        for key in query.on:
            left_cols = self._expand_key(key, left)
            right_cols = self._expand_key(key, right)
            if left_cols != right_cols:
                raise SemanticError(
                    f"join key {key!r} expands differently on the two sides"
                )
            on.extend(left_cols)

        # §2 footnote 3: the key must uniquely identify records in both
        # tables.  Sufficient static condition: both sides are keyed
        # tables grouped exactly by the join key.
        for side_name, side in ((query.left, left), (query.right, right)):
            if not side.keyed:
                raise SemanticError(
                    f"JOIN input {side_name!r} is not a grouped table; the join key "
                    "cannot be proven unique (paper §2, footnote 3)"
                )
            if set(side.key_columns) != set(on):
                raise SemanticError(
                    f"JOIN key {on} must equal the grouping key "
                    f"{list(side.key_columns)} of input {side_name!r}"
                )

        tables = {query.left: left, query.right: right}
        scope = Scope(tables=tables, params=self.params)
        where = self.resolve_expr(query.where, scope) if query.where is not None else None

        columns: list[Column] = [
            Column(name=k, kind="key", source=k,
                   dtype=self._key_dtype(k, left), bits=self._key_bits(k, left))
            for k in on
        ]
        if isinstance(query.items, Star):
            for tname, tschema in tables.items():
                for col in tschema.columns:
                    if col.name in on:
                        continue
                    columns.append(Column(
                        name=f"{tname}.{col.name}", kind="expr", dtype=col.dtype,
                        bits=col.bits, expr=ColumnRef(col.name, table=tname),
                    ))
        else:
            for item in query.items:
                resolved = self.resolve_expr(item.expr, scope)
                cname = item.alias or self._derive_join_name(item.expr, resolved)
                dtype, bits = self._infer_type(resolved, None)
                columns.append(Column(name=cname, kind="expr", dtype=dtype,
                                      bits=bits, expr=resolved))

        output = TableSchema(name=name, keyed=True, key_columns=tuple(on),
                             columns=tuple(columns))
        return ResolvedQuery(
            name=name, kind="join", source=None,
            join_left=query.left, join_right=query.right, join_on=tuple(on),
            where=where, output=output,
            select_exprs=tuple(c for c in columns if c.kind == "expr"),
        )

    @staticmethod
    def _derive_join_name(original: Expr, resolved: Expr) -> str:
        if isinstance(resolved, ColumnRef):
            if resolved.table:
                return f"{resolved.table}.{resolved.name}"
            return resolved.name
        return format_expr(original)

    @staticmethod
    def _canonical_source(source: str | None) -> str | None:
        return None if source in (None, BASE_TABLE) else source


def resolve_program(program: Program) -> ResolvedProgram:
    """Resolve and check ``program`` (see module docstring)."""
    return Resolver(program).run()
