"""Versioned, checksummed wire format for session checkpoints.

A checkpoint is a self-describing byte string::

    MAGIC (8)  | version (u16 LE) | payload length (u64 LE)
    crc32 (u32 LE, over the payload) | payload (pickled state dict)

The payload is a plain data dict (numpy arrays, dicts, dataclasses of
builtins) — never compiled closures or store objects — produced by
``TelemetrySession._checkpoint_payload`` and friends.  Restoring
rebuilds the engine-side structure from the engine's own configuration
and loads only this data into it, which is what makes mid-stream
checkpoint/restore bit-identical to an uninterrupted run.

Every framing defect (short read, bad magic, unknown version, length
mismatch, checksum mismatch, undecodable payload) raises
:class:`~repro.core.errors.CheckpointError` with a message naming the
defect, rather than deserializing garbage.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from repro.core.errors import CheckpointError

MAGIC = b"RPROCKPT"
VERSION = 1

_HEADER = struct.Struct("<8sHQI")  # magic, version, payload len, crc32


def pack_checkpoint(payload: dict) -> bytes:
    """Serialize a state payload into framed checkpoint bytes."""
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pragma: no cover - payloads are plain data
        raise CheckpointError(f"checkpoint payload is not serializable: {exc}") from exc
    header = _HEADER.pack(MAGIC, VERSION, len(body), zlib.crc32(body))
    return header + body


def unpack_checkpoint(data: bytes) -> dict:
    """Validate framing and return the deserialized state payload."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise CheckpointError(
            f"checkpoint must be bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) < _HEADER.size:
        raise CheckpointError(
            f"truncated checkpoint: {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointError("not a session checkpoint (bad magic bytes)")
    if version != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version} "
            f"(this build reads version {VERSION})")
    body = data[_HEADER.size:]
    if len(body) != length:
        raise CheckpointError(
            f"truncated checkpoint: header promises {length} payload bytes, "
            f"found {len(body)}")
    if zlib.crc32(body) != crc:
        raise CheckpointError("corrupted checkpoint: payload checksum mismatch")
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(
            f"corrupted checkpoint: payload does not decode ({exc})") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"corrupted checkpoint: payload is {type(payload).__name__}, "
            "expected a state dict")
    return payload


def describe_checkpoint(data: bytes) -> dict:
    """Header + payload metadata for the CLI ``checkpoint`` subcommand."""
    payload = unpack_checkpoint(data)
    info = {
        "version": VERSION,
        "bytes": len(data),
        "kind": payload.get("kind"),
        "window": payload.get("window"),
        "exact": payload.get("exact", False),
        "shards": payload.get("shards"),
        "packets_ingested": payload.get("packets_ingested"),
    }
    config = payload.get("config")
    if isinstance(config, dict):
        info["result"] = config.get("result")
        info["policy"] = config.get("policy")
        info["engine"] = config.get("engine")
        info["seed"] = config.get("seed")
    if payload.get("kind") == "network":
        info["switches"] = payload.get("switches")
    return info
