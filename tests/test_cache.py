"""Cache tests: geometries, policies, LRU semantics, and a reference-
model property check."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HardwareError
from repro.switch.kvstore.cache import (
    CacheGeometry,
    KeyValueCache,
    mix_key,
    simulate_eviction_count,
    splitmix64,
)


class TestGeometry:
    def test_hash_table(self):
        g = CacheGeometry.hash_table(64)
        assert (g.n_buckets, g.m_slots, g.capacity) == (64, 1, 64)

    def test_fully_associative(self):
        g = CacheGeometry.fully_associative(64)
        assert (g.n_buckets, g.m_slots) == (1, 64)

    def test_set_associative(self):
        g = CacheGeometry.set_associative(64, ways=8)
        assert (g.n_buckets, g.m_slots) == (8, 8)

    def test_set_associative_requires_divisibility(self):
        with pytest.raises(HardwareError):
            CacheGeometry.set_associative(65, ways=8)

    def test_invalid_geometry(self):
        with pytest.raises(HardwareError):
            CacheGeometry(0, 4)

    def test_describe(self):
        assert "hash table" in CacheGeometry.hash_table(8).describe()
        assert "fully associative" in CacheGeometry.fully_associative(8).describe()
        assert "8-way" in CacheGeometry.set_associative(64, 8).describe()


class TestHashing:
    def test_splitmix_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_mix_key_tuple_vs_scalar(self):
        assert mix_key((1, 2)) != mix_key((2, 1))

    def test_seed_changes_placement(self):
        assert mix_key((1, 2), seed=0) != mix_key((1, 2), seed=1)


class TestLruSemantics:
    def test_hit_refreshes_lru(self):
        cache = KeyValueCache(CacheGeometry.fully_associative(2))
        cache.access("a", lambda: 1)
        cache.access("b", lambda: 2)
        cache.access("a", lambda: 3)          # refresh a
        _, evicted = cache.access("c", lambda: 4)
        assert evicted.key == "b"             # LRU victim

    def test_fifo_ignores_hits(self):
        cache = KeyValueCache(CacheGeometry.fully_associative(2), policy="fifo")
        cache.access("a", lambda: 1)
        cache.access("b", lambda: 2)
        cache.access("a", lambda: 3)          # hit does NOT refresh
        _, evicted = cache.access("c", lambda: 4)
        assert evicted.key == "a"             # oldest insertion

    def test_hash_table_evicts_on_collision_only(self):
        cache = KeyValueCache(CacheGeometry.hash_table(4))
        for key in range(100):
            cache.access(key, lambda: None)
        assert cache.stats.evictions == cache.stats.insertions - len(cache)

    def test_value_preserved_across_hits(self):
        cache = KeyValueCache(CacheGeometry.fully_associative(4))
        entry, _ = cache.access("k", lambda: {"count": 0})
        entry.value["count"] += 1
        entry2, _ = cache.access("k", lambda: {"count": 0})
        assert entry2.value["count"] == 1

    def test_evicted_key_reinserts_fresh(self):
        """§3.2: 'a subsequent packet from the evicted key is treated as
        a packet from a new key'."""
        cache = KeyValueCache(CacheGeometry.fully_associative(1))
        cache.access("a", lambda: {"v": 10})
        cache.access("b", lambda: {"v": 0})   # evicts a
        entry, _ = cache.access("a", lambda: {"v": 0})
        assert entry.value == {"v": 0}


class TestStats:
    def test_counters_consistent(self):
        cache = KeyValueCache(CacheGeometry.set_associative(8, 2))
        for key in [1, 2, 1, 3, 4, 5, 1, 6, 7, 8, 9]:
            cache.access(key, lambda: None)
        stats = cache.stats
        assert stats.accesses == 11
        assert stats.hits + stats.misses == stats.accesses
        assert stats.insertions == stats.misses
        assert len(cache) == stats.insertions - stats.evictions

    def test_eviction_fraction(self):
        cache = KeyValueCache(CacheGeometry.fully_associative(1))
        for key in [1, 2, 3, 4]:
            cache.access(key, lambda: None)
        assert cache.stats.eviction_fraction == pytest.approx(3 / 4)

    def test_flush_not_counted_as_eviction(self):
        cache = KeyValueCache(CacheGeometry.fully_associative(8))
        for key in range(5):
            cache.access(key, lambda: None)
        flushed = cache.flush()
        assert len(flushed) == 5
        assert cache.stats.evictions == 0
        assert len(cache) == 0

    def test_occupancy(self):
        cache = KeyValueCache(CacheGeometry.fully_associative(10))
        for key in range(5):
            cache.access(key, lambda: None)
        assert cache.occupancy == pytest.approx(0.5)


class TestDeterminism:
    def test_same_seed_same_evictions(self):
        keys = [(i * 7) % 50 for i in range(500)]
        a = simulate_eviction_count(keys, CacheGeometry.set_associative(16, 8), seed=3)
        b = simulate_eviction_count(keys, CacheGeometry.set_associative(16, 8), seed=3)
        assert a.evictions == b.evictions

    def test_random_policy_seeded(self):
        keys = list(range(100)) * 2
        a = simulate_eviction_count(keys, CacheGeometry.fully_associative(10),
                                    policy="random", seed=5)
        b = simulate_eviction_count(keys, CacheGeometry.fully_associative(10),
                                    policy="random", seed=5)
        assert a.evictions == b.evictions


class _ReferenceLru:
    """Textbook fully-associative LRU for the property check."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = OrderedDict()
        self.evictions = 0
        self.hits = 0

    def access(self, key):
        if key in self.data:
            self.data.move_to_end(key)
            self.hits += 1
            return
        if len(self.data) >= self.capacity:
            self.data.popitem(last=False)
            self.evictions += 1
        self.data[key] = True


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=30), max_size=300),
       capacity=st.integers(min_value=1, max_value=16))
def test_fully_associative_matches_reference_lru(keys, capacity):
    reference = _ReferenceLru(capacity)
    for key in keys:
        reference.access(key)
    stats = simulate_eviction_count(keys, CacheGeometry.fully_associative(capacity))
    assert stats.evictions == reference.evictions
    assert stats.hits == reference.hits


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=100), max_size=300),
       ways=st.sampled_from([1, 2, 4, 8]))
def test_bucket_capacity_never_exceeded(keys, ways):
    cache = KeyValueCache(CacheGeometry(n_buckets=4, m_slots=ways))
    for key in keys:
        cache.access(key, lambda: None)
    for bucket in cache._buckets:
        assert len(bucket) <= ways


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=200), max_size=400))
def test_more_associativity_never_hurts_much(keys):
    """Fig. 5's ordering: full LRU ≤ 8-way ≤ hash table (allowing tiny
    deviations from hash placement luck)."""
    capacity = 16
    full = simulate_eviction_count(keys, CacheGeometry.fully_associative(capacity))
    eight = simulate_eviction_count(keys, CacheGeometry.set_associative(capacity, 8))
    hash_t = simulate_eviction_count(keys, CacheGeometry.hash_table(capacity))
    slack = max(3, len(keys) // 20)
    assert full.evictions <= eight.evictions + slack
    assert eight.evictions <= hash_t.evictions + slack
