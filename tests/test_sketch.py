"""Count-Min sketch tests: guarantees, geometry, baseline behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HardwareError
from repro.switch.kvstore.sketch import (
    CountMinSketch,
    SketchGeometry,
    run_count_query,
)


class TestGeometry:
    def test_total_bits(self):
        geometry = SketchGeometry(width=100, depth=4, counter_bits=24)
        assert geometry.total_bits == 100 * 4 * 24

    def test_for_bits_fits_budget(self):
        geometry = SketchGeometry.for_bits(1 << 20, depth=4)
        assert geometry.total_bits <= 1 << 20

    def test_invalid_rejected(self):
        with pytest.raises(HardwareError):
            SketchGeometry(width=0, depth=4)


class TestGuarantees:
    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(SketchGeometry(width=4096, depth=4))
        for key in range(10):
            for _ in range(key + 1):
                sketch.update(key)
        for key in range(10):
            assert sketch.estimate(key) == key + 1

    def test_never_undercounts(self):
        sketch = CountMinSketch(SketchGeometry(width=8, depth=2))
        truth: dict[int, int] = {}
        for i in range(500):
            key = i % 37
            sketch.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, exact in truth.items():
            assert sketch.estimate(key) >= exact

    def test_conservative_no_worse(self):
        keys = [(i * 13) % 101 for i in range(3000)]
        geometry = SketchGeometry(width=32, depth=4)
        plain = run_count_query(keys, geometry)
        conservative = run_count_query(keys, geometry, conservative=True)
        truth: dict[int, int] = {}
        for key in keys:
            truth[key] = truth.get(key, 0) + 1
        for key in truth:
            assert conservative.estimate(key) <= plain.estimate(key)
            assert conservative.estimate(key) >= truth[key]

    def test_smaller_sketch_larger_error(self):
        keys = [(i * 7) % 500 for i in range(20_000)]
        truth: dict[int, int] = {}
        for key in keys:
            truth[key] = truth.get(key, 0) + 1
        small = run_count_query(keys, SketchGeometry(width=64, depth=4))
        large = run_count_query(keys, SketchGeometry(width=2048, depth=4))
        err_small = sum(small.relative_errors(truth))
        err_large = sum(large.relative_errors(truth))
        assert err_large <= err_small

    def test_counter_saturation(self):
        sketch = CountMinSketch(SketchGeometry(width=4, depth=1,
                                               counter_bits=4))
        for _ in range(100):
            sketch.update(1)
        assert sketch.estimate(1) == 15  # 4-bit ceiling


class TestHelpers:
    def test_relative_errors_nonnegative(self):
        keys = list(range(50)) * 3
        sketch = run_count_query(keys, SketchGeometry(width=16, depth=2))
        truth = {k: 3 for k in range(50)}
        assert all(e >= 0 for e in sketch.relative_errors(truth))

    def test_occupied_fraction(self):
        sketch = CountMinSketch(SketchGeometry(width=128, depth=2))
        assert sketch.occupied_fraction() == 0.0
        sketch.update(1)
        assert sketch.occupied_fraction() > 0.0

    def test_tuple_keys(self):
        sketch = CountMinSketch(SketchGeometry(width=1024, depth=4))
        sketch.update((10, 20, 30, 40, 6))
        assert sketch.estimate((10, 20, 30, 40, 6)) == 1
        assert sketch.estimate((10, 20, 30, 40, 17)) == 0


@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=200), max_size=500),
       width=st.sampled_from([8, 64, 512]),
       depth=st.integers(min_value=1, max_value=5))
def test_overcount_property(keys, width, depth):
    """For any stream and geometry: estimates ≥ exact counts and the
    stream total is preserved."""
    sketch = run_count_query(keys, SketchGeometry(width=width, depth=depth))
    truth: dict[int, int] = {}
    for key in keys:
        truth[key] = truth.get(key, 0) + 1
    assert sketch.total == len(keys)
    for key, exact in truth.items():
        assert sketch.estimate(key) >= exact
