"""Datacenter workload generator (Benson et al. [16] style).

§4 derives its "typical datacenter conditions" from Benson et al.:
850-byte average packets, 30% network utilisation.  This generator
produces rack-structured traffic with those aggregates:

* hosts are grouped into racks; most traffic stays intra-rack with a
  configurable fraction crossing the aggregation layer (locality);
* flows arrive as an on/off process per host pair with heavy-tailed
  sizes (query/response mice plus storage/shuffle elephants);
* packet sizes are bimodal around the 850 B mean.

Output is either an observation table for a single monitored uplink
queue, or *injection events* for the network simulator
(:mod:`repro.network.simulator`) when a multi-switch view is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.records import ObservationTable
from .distributions import bimodal_packet_sizes, bounded_zipf
from .flows import expand_flows_to_packets, per_flow_prefix


@dataclass(frozen=True)
class DatacenterConfig:
    """Datacenter workload parameters (defaults per §4 / Benson)."""

    n_racks: int = 4
    hosts_per_rack: int = 16
    n_flows: int = 4000
    duration_ns: int = 1_000_000_000  # 1 s
    intra_rack_fraction: float = 0.6
    mean_packet_bytes: float = 850.0
    utilization: float = 0.30
    link_gbps: float = 10.0
    zipf_alpha: float = 1.1
    max_flow_packets: int = 50_000
    seed: int = 16


@dataclass(frozen=True)
class InjectionEvent:
    """One packet to inject into the network simulator."""

    time_ns: int
    src_host: int
    dst_host: int
    srcport: int
    dstport: int
    proto: int
    pkt_len: int
    payload_len: int
    tcpseq: int


def _host_ip(host: int) -> int:
    """Map host index to a 10.rack.host.1-style address."""
    return 0x0A000001 + host * 256


class DatacenterWorkload:
    """Generates flows/packets for the configured datacenter."""

    def __init__(self, config: DatacenterConfig | None = None):
        self.config = config or DatacenterConfig()
        self._rng = np.random.default_rng(self.config.seed)

    @property
    def n_hosts(self) -> int:
        return self.config.n_racks * self.config.hosts_per_rack

    def _draw_host_pairs(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        rng = self._rng
        src = rng.integers(0, self.n_hosts, n)
        intra = rng.random(n) < cfg.intra_rack_fraction
        src_rack = src // cfg.hosts_per_rack
        dst_rack = np.where(
            intra, src_rack, rng.integers(0, cfg.n_racks, n)
        )
        dst = dst_rack * cfg.hosts_per_rack + rng.integers(0, cfg.hosts_per_rack, n)
        # Avoid self-talk.
        clash = dst == src
        dst[clash] = (dst[clash] + 1) % self.n_hosts
        return src, dst

    def packet_schedule(self) -> tuple[dict[str, np.ndarray], np.ndarray, np.ndarray]:
        """Flow identity arrays plus (flow_index, time) packet arrays."""
        cfg = self.config
        rng = self._rng
        n = cfg.n_flows
        src_hosts, dst_hosts = self._draw_host_pairs(n)
        ids = {
            "src_host": src_hosts,
            "dst_host": dst_hosts,
            "srcip": np.array([_host_ip(h) for h in src_hosts], dtype=np.int64),
            "dstip": np.array([_host_ip(h) for h in dst_hosts], dtype=np.int64),
            "srcport": rng.integers(1024, 65535, n),
            "dstport": rng.choice(np.array([80, 443, 9092, 6379, 50010]), n),
            "proto": np.full(n, 6, dtype=np.int64),
        }
        sizes = bounded_zipf(rng, n, cfg.zipf_alpha, 1, cfg.max_flow_packets)
        # Scale total bytes to hit the utilisation target on one uplink.
        capacity_bytes = cfg.link_gbps / 8.0 * cfg.duration_ns  # bytes over run
        target_bytes = capacity_bytes * cfg.utilization
        scale = target_bytes / float(sizes.sum() * cfg.mean_packet_bytes)
        sizes = np.maximum(1, np.round(sizes * scale)).astype(np.int64)

        starts = rng.integers(0, int(cfg.duration_ns * 0.9), n)
        active = rng.exponential(cfg.duration_ns * 0.1, n) + 1e4
        mean_gaps = np.maximum(1.0, active / np.maximum(1, sizes))
        flow_of, times = expand_flows_to_packets(rng, sizes, starts, mean_gaps)
        return ids, flow_of, times

    # -- output forms ---------------------------------------------------------

    def injection_events(self) -> list[InjectionEvent]:
        """Per-packet events for the network simulator, time-ordered."""
        cfg = self.config
        ids, flow_of, times = self.packet_schedule()
        pkt_lens = bimodal_packet_sizes(self._rng, len(flow_of),
                                        mean=cfg.mean_packet_bytes)
        seq_next: dict[int, int] = {}
        events: list[InjectionEvent] = []
        src_host = ids["src_host"]
        dst_host = ids["dst_host"]
        srcport = ids["srcport"]
        dstport = ids["dstport"]
        for i, (f, t) in enumerate(zip(flow_of.tolist(), times.tolist())):
            payload = max(0, int(pkt_lens[i]) - 40)
            seq = seq_next.get(f, 1000)
            seq_next[f] = seq + payload + 1
            events.append(InjectionEvent(
                time_ns=t,
                src_host=int(src_host[f]), dst_host=int(dst_host[f]),
                srcport=int(srcport[f]), dstport=int(dstport[f]), proto=6,
                pkt_len=int(pkt_lens[i]), payload_len=payload, tcpseq=seq,
            ))
        return events

    def observation_table(self, qid: int = 0) -> ObservationTable:
        """Single monitored queue view (uplink), M/D/1-ish timings.

        Fully columnar: the work-conserving queue recurrence
        ``finish[i] = max(tin[i], finish[i-1]) + service[i]`` is solved
        in closed form (subtract the service cumsum, take a running
        maximum), and the depth seen at enqueue is a ``searchsorted``
        against the nondecreasing departure times — both exact integer
        reformulations of the sequential loop.
        """
        cfg = self.config
        ids, flow_of, times = self.packet_schedule()
        n = len(flow_of)
        pkt_lens = bimodal_packet_sizes(self._rng, n, mean=cfg.mean_packet_bytes)
        ns_per_byte = 8.0 / cfg.link_gbps
        service = (pkt_lens * ns_per_byte).astype(np.int64)

        csum = np.cumsum(service)
        finish = np.maximum.accumulate(times - (csum - service)) + csum
        # Queue depth at enqueue: packets admitted earlier and still
        # unserved, i.e. #{j < i : finish[j] > tin[i]}.  ``finish`` is
        # nondecreasing, so {j : finish[j] <= tin[i]} is a prefix whose
        # length searchsorted gives; clamping it to i restricts the
        # count to earlier packets (a packet with zero integer service
        # time can depart exactly at a later packet's tin, so the
        # prefix may extend past i at extreme link rates).
        arange = np.arange(n, dtype=np.int64)
        departed = np.searchsorted(finish, times, side="right")
        qin = arange - np.minimum(departed, arange)
        payload = np.maximum(0, pkt_lens - 40)
        seqs = per_flow_prefix(flow_of, payload + 1, start=1000)

        return ObservationTable.from_arrays({
            "srcip": ids["srcip"][flow_of],
            "dstip": ids["dstip"][flow_of],
            "srcport": ids["srcport"][flow_of],
            "dstport": ids["dstport"][flow_of],
            "proto": np.full(n, 6, dtype=np.int64),
            "pkt_len": pkt_lens,
            "payload_len": payload,
            "tcpseq": seqs,
            "pkt_id": np.arange(n, dtype=np.int64),
            "qid": np.full(n, qid, dtype=np.int64),
            "tin": times,
            "tout": finish.astype(np.float64),
            "qin": qin,
            "qout": np.zeros(n, dtype=np.int64),
            "qsize": qin,
            "pkt_path": np.full(n, qid, dtype=np.int64),
        })
