"""TCP sequence-number dynamics: loss, retransmission, reordering.

The Fig. 2 queries ``TCP out of sequence`` and ``TCP non-monotonic``
observe sequence-number anomalies.  This module perturbs a clean
per-flow sequence progression with the three classic anomaly sources:

* *drops + retransmissions* — a lost segment is re-sent later with its
  original (lower-than-maximum) sequence number → non-monotonic;
* *reordering* — adjacent segments swap in the observation stream →
  both out-of-sequence and non-monotonic;
* *duplicates* — a segment appears twice (spurious retransmit).

The perturbations operate on an observation table in place, so any
generator's output can be "TCP-ified" for the catalog queries.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.schema import FIVE_TUPLE
from repro.core.vector_exec import factorize
from repro.network.records import ObservationTable

from .flows import per_flow_prefix


@dataclass(frozen=True)
class TcpAnomalyConfig:
    """Anomaly injection rates (per packet)."""

    retransmit_rate: float = 0.01
    reorder_rate: float = 0.01
    duplicate_rate: float = 0.002
    seed: int = 7


def inject_tcp_anomalies(table: ObservationTable,
                         config: TcpAnomalyConfig | None = None) -> dict[str, int]:
    """Inject sequence anomalies into the TCP flows of ``table``.

    Returns counters of injected events, useful for asserting that the
    catalog queries detect what was planted.

    The table is modified in place:

    * *retransmit*: a random packet's sequence number is rewritten to
      repeat the previous segment of its flow (models a re-sent loss);
    * *reorder*: a packet swaps sequence numbers with its flow's next
      packet;
    * *duplicate*: a packet's sequence is replayed verbatim on the
      following packet of the flow.
    """
    config = config or TcpAnomalyConfig()
    rng = np.random.default_rng(config.seed)

    # Group record indices per TCP flow, preserving stream order.
    flows: dict[tuple, list[int]] = defaultdict(list)
    for i, record in enumerate(table.records):
        if record.proto == 6:
            flows[record.five_tuple()].append(i)

    counts = {"retransmit": 0, "reorder": 0, "duplicate": 0}
    records = table.records
    for indices in flows.values():
        if len(indices) < 3:
            continue
        u = rng.random(len(indices))
        for pos in range(1, len(indices) - 1):
            idx = indices[pos]
            prev_idx = indices[pos - 1]
            next_idx = indices[pos + 1]
            roll = u[pos]
            if roll < config.retransmit_rate:
                # Re-send an *older* segment: by now the flow's maximum
                # sequence is the previous packet's, so replaying the
                # segment before it lands strictly below the maximum
                # (what the paper's ``nonmt`` fold detects).
                older_idx = indices[pos - 2] if pos >= 2 else prev_idx
                records[idx].tcpseq = records[older_idx].tcpseq
                records[idx].payload_len = records[older_idx].payload_len
                counts["retransmit"] += 1
            elif roll < config.retransmit_rate + config.reorder_rate:
                records[idx].tcpseq, records[next_idx].tcpseq = (
                    records[next_idx].tcpseq, records[idx].tcpseq)
                records[idx].payload_len, records[next_idx].payload_len = (
                    records[next_idx].payload_len, records[idx].payload_len)
                counts["reorder"] += 1
            elif roll < (config.retransmit_rate + config.reorder_rate
                         + config.duplicate_rate):
                records[next_idx].tcpseq = records[idx].tcpseq
                records[next_idx].payload_len = records[idx].payload_len
                counts["duplicate"] += 1
    return counts


def clean_sequence_table(table: ObservationTable) -> None:
    """Rewrite every TCP flow's sequence numbers to the paper's
    "consecutive" convention (``tcpseq == lastseq + 1`` where
    ``lastseq = prev.tcpseq + prev.payload_len``), so that the
    ``outofseq`` query reports 0 on an anomaly-free trace.

    The Fig. 2 fold defines in-sequence as ``lastseq + 1 == tcpseq``;
    generators that emit standard cumulative TCP numbering (next seq ==
    prev seq + payload) would register every packet as out-of-sequence
    under that convention, so catalog tests normalise with this helper
    before injecting anomalies.

    Columnar tables are rewritten in place as a segmented prefix sum
    (no row materialisation); row tables take the sequential loop.
    """
    if table.is_columnar:
        columns = table.columns()
        tcp = np.flatnonzero(columns["proto"] == 6)
        if len(tcp) == 0:
            return
        gid, _, _ = factorize([columns[f][tcp] for f in FIVE_TUPLE])
        increments = columns["payload_len"][tcp] + 1
        columns["tcpseq"][tcp] = per_flow_prefix(gid, increments, start=1000)
        return
    next_seq: dict[tuple, int] = {}
    for record in table.records:
        if record.proto != 6:
            continue
        key = record.five_tuple()
        seq = next_seq.get(key, 1000)
        record.tcpseq = seq
        next_seq[key] = seq + record.payload_len + 1
