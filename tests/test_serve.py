"""Live ingest service tests: wire format, served differential
bit-identity, backpressure, load shedding, admission control, idle
timeouts, connection faults, the trace tailer, and SIGTERM drain.

The differential acceptance criterion: ingest through the socket
front end (:class:`IngestServer` + :class:`IngestClient`) and through
the trace tailer must be **bit-identical** to :meth:`QueryEngine.run`
— for every eviction policy × window partitioning × shards {1, 2},
under hypothesis-driven injected connection faults (mid-frame
disconnects, corrupt frames), and under forced backpressure (tiny
watermarks + a slow consumer).  Load shedding is the documented
exception: it *loses* batches, but with exact accounting — the
dropped-batch/record counters on both ends must agree and explain the
entire shortfall.  Plus: admission control rejects with a reason, an
idle connection is reaped without killing its session, the tailer
survives truncation and rotation, and a SIGTERM'd serving process
drains gracefully (checkpoints, exits cleanly, no stranded /dev/shm,
resume completes to the uninterrupted result).
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.records import ObservationTable
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry import wire
from repro.telemetry.client import ClientError, IngestClient, stream_file
from repro.telemetry.faults import FaultInjector, FaultPlan
from repro.telemetry.runtime import QueryEngine
from repro.telemetry.serve import IngestServer, TraceTailer
from repro.telemetry.wire import FrameError
from repro.traffic.trace_io import write_csv

from tests.conftest import synthetic_trace
from tests.test_session import chunked, observables

GEOM = CacheGeometry.set_associative(64, ways=4)
QUERY = "SELECT COUNT, SUM(pkt_len) GROUPBY srcip"


def make_engine(policy="lru"):
    return QueryEngine(QUERY, geometry=GEOM, policy=policy)


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(600, seed=31)


@pytest.fixture(scope="module")
def expected(trace):
    """Per-policy uninterrupted ``run()`` observables."""
    return {policy: observables(make_engine(policy).run(trace))
            for policy in ("lru", "fifo", "random")}


@contextmanager
def serving(engine, **kwargs):
    server = engine.serve(**kwargs)
    address = server.start()
    try:
        yield server, address
    finally:
        server.stop()


def stream(address, table, chunk, session="s", **kwargs):
    """Feed the trace through a client; returns (close payload, client)."""
    client = IngestClient(address, session, retry_seed=7, **kwargs)
    client.connect()
    try:
        for batch in chunked(table, chunk):
            client.send(batch)
        return client.close_session(), client
    finally:
        client.disconnect()


# -- wire format --------------------------------------------------------------


def test_frame_roundtrip():
    frame = wire.pack_frame(wire.T_BATCH, {"seq": 3, "columns": {}})
    ftype, length, crc = wire.parse_header(frame[:wire.HEADER.size])
    assert ftype == wire.T_BATCH
    payload = wire.decode_payload(frame[wire.HEADER.size:], crc)
    assert payload == {"seq": 3, "columns": {}}


def test_frame_rejects_bad_magic():
    with pytest.raises(FrameError, match="magic"):
        wire.parse_header(b"XXXX" + bytes(wire.HEADER.size - 4))


def test_frame_rejects_oversized_length():
    header = wire.HEADER.pack(wire.MAGIC, wire.T_BATCH,
                              wire.MAX_PAYLOAD + 1, 0)
    with pytest.raises(FrameError, match="exceeds"):
        wire.parse_header(header)


def test_frame_rejects_corrupt_payload():
    frame = bytearray(wire.pack_frame(wire.T_OK, {"seq": 1}))
    frame[wire.HEADER.size] ^= 0xFF
    ftype, length, crc = wire.parse_header(bytes(frame[:wire.HEADER.size]))
    with pytest.raises(FrameError, match="checksum"):
        wire.decode_payload(bytes(frame[wire.HEADER.size:]), crc)


# -- differential: served ingest == run() -------------------------------------


@pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
@pytest.mark.parametrize("window,chunk", [(7, 97), (64, 211), (1000, 460)])
def test_served_matches_run(trace, expected, policy, window, chunk):
    """Socket ingest is bit-identical to run() across policies and
    window partitionings."""
    with serving(make_engine(policy), window=window) as (server, address):
        final, client = stream(address, trace, chunk)
    assert observables(final["report"]) == expected[policy]
    assert final["serve"]["records_in"] == len(trace)
    assert final["serve"]["shed_batches"] == 0


@pytest.mark.parametrize("policy", ["lru", "random"])
def test_served_matches_run_sharded(trace, expected, policy):
    """Socket ingest into a 2-shard served session is bit-identical to
    the single-process run()."""
    with serving(make_engine(policy), window=64, shards=2) as (_, address):
        final, _ = stream(address, trace, 211)
    assert observables(final["report"]) == expected[policy]


def test_served_unix_socket(tmp_path, trace, expected):
    with serving(make_engine(), window=64,
                 unix_path=tmp_path / "ingest.sock") as (server, address):
        assert isinstance(address, str)
        final, _ = stream(address, trace, 97)
    assert observables(final["report"]) == expected["lru"]


def test_served_midstream_results_and_checkpoint(trace, expected):
    """RESULTS mid-stream snapshots and CHECKPOINT resume are served
    consistently: the snapshot matches a direct session at the same
    cut, and the checkpoint resumes to the uninterrupted result."""
    engine = make_engine()
    cut = 388                      # 4 batches of 97
    with serving(engine, window=64) as (server, address):
        client = IngestClient(address, "mid", retry_seed=7)
        client.connect()
        batches = list(chunked(trace, 97))
        for batch in batches[:4]:
            client.send(batch)
        snapshot = client.checkpoint()["checkpoint"]
        mid = client.results()
        for batch in batches[4:]:
            client.send(batch)
        final = client.close_session()
        client.disconnect()
    direct = engine.open(window=64)
    for batch in batches[:4]:
        direct.ingest(batch)
    assert observables(mid["report"]) == \
        observables(direct.results(include_invalid=True))
    direct.close()
    resumed = engine.resume(snapshot)
    assert resumed.packets_ingested == cut
    columns = trace.columns()
    resumed.ingest(ObservationTable.from_arrays(
        {name: col[cut:] for name, col in columns.items()}))
    assert observables(resumed.close(include_invalid=True)) == \
        expected["lru"]
    assert observables(final["report"]) == expected["lru"]


# -- connection faults --------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(chunk=st.integers(min_value=50, max_value=300),
       disconnects=st.sets(st.integers(min_value=1, max_value=8),
                           max_size=2),
       corrupts=st.sets(st.integers(min_value=1, max_value=8), max_size=2))
def test_served_differential_under_faults(chunk, disconnects, corrupts):
    """Mid-frame disconnects and corrupt frames anywhere in the stream
    leave served results bit-identical to run(): the sequence resync
    redelivers each batch exactly once."""
    table = synthetic_trace(400, seed=13)
    engine = make_engine()
    want = observables(engine.run(table))
    injector = FaultInjector(FaultPlan(disconnect_sends=set(disconnects),
                                       corrupt_sends=set(corrupts)))
    with serving(engine, window=64) as (server, address):
        final, client = stream(address, table, chunk, faults=injector,
                               backoff_base=0.01)
    assert observables(final["report"]) == want
    assert final["serve"]["records_in"] == len(table)
    # every scheduled fault that fit in the stream actually fired
    fired = {kind for kind, _ in injector.events}
    sends = injector._sends
    if any(n <= sends for n in disconnects):
        assert "disconnect_send" in fired
    if any(n <= sends for n in corrupts):
        assert "corrupt_send" in fired


def test_client_retries_connect_until_server_up(trace, expected):
    """A client started before the server tolerates the race: connect
    retries with backoff until the listener appears."""
    engine = make_engine()
    server = engine.serve(window=64, port=0)
    results = {}

    def late_start():
        time.sleep(0.3)
        results["address"] = server.start()

    thread = threading.Thread(target=late_start)
    # Find the port the server will get: bind/release one ourselves.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    server._port = port
    thread.start()
    try:
        final, client = stream(("127.0.0.1", port), trace, 97,
                               backoff_base=0.05, max_retries=12)
        assert observables(final["report"]) == expected["lru"]
    finally:
        thread.join()
        server.stop()


# -- backpressure -------------------------------------------------------------


def test_backpressure_busy_ready_and_differential(trace, expected):
    """A fast client over a slow consumer sees explicit BUSY/READY
    credit frames, and the result is still bit-identical — no batch is
    lost to the watermark."""
    with serving(make_engine(), window=64, queue_high_bytes=20_000,
                 queue_low_bytes=5_000,
                 ingest_delay=0.02) as (server, address):
        final, client = stream(address, trace, 97)
    assert client.busy_events > 0
    assert client.ready_events >= client.busy_events
    assert final["serve"]["busy_events"] == client.busy_events
    assert observables(final["report"]) == expected["lru"]


def test_watermark_validation():
    with pytest.raises(ValueError, match="watermark"):
        IngestServer(make_engine(), queue_high_bytes=100,
                     queue_low_bytes=200)


# -- load shedding ------------------------------------------------------------


def test_shed_mode_exact_accounting(trace):
    """Shedding drops whole batches only, and both ends agree on the
    exact count: records_in + shed_records == records sent, and the
    session saw exactly records_in accesses."""
    with serving(make_engine(), window=64, shed=True,
                 queue_high_bytes=20_000,
                 ingest_delay=0.02) as (server, address):
        final, client = stream(address, trace, 97)
    meta = final["serve"]
    assert meta["shed_batches"] > 0, "watermark never tripped"
    assert meta["shed_batches"] == client.shed_batches
    assert meta["shed_records"] == client.shed_records
    assert meta["records_in"] + meta["shed_records"] == len(trace)
    assert meta["batches_in"] + meta["shed_batches"] == \
        len(list(chunked(trace, 97)))
    # the session really ingested exactly the non-shed records
    stats = next(iter(final["report"].cache_stats.values()))
    assert stats.accesses == meta["records_in"]
    assert client.busy_events == 0      # shed mode never backpressures


# -- admission control --------------------------------------------------------


def test_admission_rejects_over_session_limit(trace):
    with serving(make_engine(), window=64, max_sessions=1) as (_, address):
        first = IngestClient(address, "a")
        first.connect()
        second = IngestClient(address, "b", max_retries=0)
        with pytest.raises(ClientError, match="session limit"):
            second.connect()
        # reattaching to the existing session is still admitted
        again = IngestClient(address, "a")
        assert again.connect()["session"] == "a"
        first.disconnect()
        again.disconnect()


def test_admission_rejects_when_overloaded(trace):
    """HELLO is refused with an explicit reason while queued bytes
    exceed the global in-flight budget."""
    with serving(make_engine(), window=64, max_inflight_bytes=10_000,
                 queue_high_bytes=1 << 20,
                 ingest_delay=0.4) as (server, address):
        refusals = []

        def try_second():
            time.sleep(0.15)
            late = IngestClient(address, "b", max_retries=0)
            try:
                late.connect()
            except ClientError as exc:
                refusals.append(str(exc))

        probe = threading.Thread(target=try_second)
        probe.start()
        first = IngestClient(address, "a")
        first.connect()
        batch = next(chunked(trace, 97))       # ~12 KB > the 10 KB budget
        first.send(batch)                      # blocks on the global BUSY
        probe.join()
        first.close_session()
        first.disconnect()
    assert refusals and "overloaded" in refusals[0]


# -- idle timeout -------------------------------------------------------------


def test_idle_timeout_reaps_connection_not_session(trace, expected):
    """A stalled client is disconnected (dead-client reaping), but the
    session survives and the reconnecting client completes the stream
    bit-identically."""
    injector = FaultInjector(FaultPlan(stall_sends={3}, stall_seconds=0.8))
    with serving(make_engine(), window=64,
                 idle_timeout=0.25) as (server, address):
        final, client = stream(address, trace, 97, faults=injector,
                               backoff_base=0.01)
        report = server.stop()
    assert ("stall_send", 3) in injector.events
    assert client.reconnects >= 1
    assert report["idle_closed"] >= 1
    assert observables(final["report"]) == expected["lru"]


# -- protocol robustness ------------------------------------------------------


def test_garbage_connection_gets_error_frame(trace):
    """A peer that is not speaking the protocol gets an explicit ERROR
    frame and a clean close — and sessions are unaffected."""
    with serving(make_engine(), window=64) as (server, address):
        raw = socket.create_connection(address, timeout=5)
        raw.sendall(b"GET / HTTP/1.1\r\n\r\n" + bytes(64))
        reply = raw.recv(1 << 16)
        raw.close()
        ftype, length, crc = wire.parse_header(reply[:wire.HEADER.size])
        assert ftype == wire.T_ERROR
        payload = wire.decode_payload(
            reply[wire.HEADER.size:wire.HEADER.size + length], crc)
        assert "magic" in payload["reason"]
        # service still serves after the garbage connection
        final, _ = stream(address, synthetic_trace(100, seed=5), 50)
        assert final["serve"]["records_in"] == 100


def test_batch_before_hello_is_fatal():
    with serving(make_engine(), window=64) as (server, address):
        raw = socket.create_connection(address, timeout=5)
        raw.sendall(wire.pack_frame(wire.T_BATCH, {"seq": 0, "columns": {}}))
        reply = raw.recv(1 << 16)
        raw.close()
        ftype, length, crc = wire.parse_header(reply[:wire.HEADER.size])
        payload = wire.decode_payload(
            reply[wire.HEADER.size:wire.HEADER.size + length], crc)
        assert ftype == wire.T_ERROR and payload["fatal"]
        assert "HELLO" in payload["reason"]


def test_close_is_idempotent_across_reconnects(trace, expected):
    """The final report survives the close reply being lost: a second
    CLOSE (fresh connection) re-fetches the stored report."""
    with serving(make_engine(), window=64) as (server, address):
        final, _ = stream(address, trace, 97, session="c")
        again = IngestClient(address, "c")
        again.connect()
        replay = again.close_session()
        again.disconnect()
    assert observables(replay["report"]) == observables(final["report"])


def test_zero_ingest_served_results(trace):
    """results() on a served session that never ingested: an empty
    report with zeroed serve metadata, not an error."""
    with serving(make_engine(), window=64) as (server, address):
        client = IngestClient(address, "empty")
        client.connect()
        snap = client.results()
        final = client.close_session()
        client.disconnect()
    assert len(snap["report"].result) == 0
    assert snap["serve"]["records_in"] == 0
    assert snap["serve"]["bytes_in"] == 0
    assert len(final["report"].result) == 0


# -- trace tailer -------------------------------------------------------------


def _tail_collect(tailer, expected_rows, timeout=15.0):
    """Drive a tailer on a thread, collecting yielded tables; returns
    (stop_event, thread, out list)."""
    out: list[ObservationTable] = []
    stop = threading.Event()

    def consume():
        for table in tailer.batches(stop=stop):
            out.append(table)

    thread = threading.Thread(target=consume, daemon=True)
    thread.start()
    deadline = time.monotonic() + timeout
    while (sum(len(t) for t in out) < expected_rows
           and time.monotonic() < deadline):
        time.sleep(0.02)
    return stop, thread, out


def _rows_of(tables):
    return sum(len(t) for t in tables)


def _concat(tables):
    names = tables[0].columns().keys()
    return {name: np.concatenate([t.columns()[name] for t in tables])
            for name in names}


def test_tailer_incremental_append(tmp_path, trace):
    """Batches appear as the file grows; a final catch-up on stop
    delivers the partial tail; content matches the offline read."""
    path = tmp_path / "grow.csv"
    write_csv(trace[:250], path)
    tailer = TraceTailer(path, batch_size=50, poll_interval=0.01)
    stop, thread, out = _tail_collect(tailer, 250)
    assert _rows_of(out) == 250
    with open(path, "a") as fh:                 # append rows, no header
        tmp = tmp_path / "rest.csv"
        write_csv(trace[250:], tmp)
        fh.write(tmp.read_text().split("\n", 1)[1])
    deadline = time.monotonic() + 15.0
    while _rows_of(out) < 600 and time.monotonic() < deadline:
        time.sleep(0.02)
    stop.set()
    thread.join(timeout=15)
    assert _rows_of(out) == len(trace)
    got = _concat(out)
    for name, col in trace.columns().items():
        np.testing.assert_array_equal(got[name], col)


def test_tailer_survives_truncation(tmp_path, trace):
    """Truncating the file (writer restarted it with new, shorter
    content) reopens from the new start; everything already delivered
    stays delivered and the new content follows."""
    path = tmp_path / "trunc.csv"
    write_csv(trace[:100], path)
    tailer = TraceTailer(path, batch_size=50, poll_interval=0.01)
    stop, thread, out = _tail_collect(tailer, 100)
    assert _rows_of(out) == 100
    # In-place rewrite with fewer rows: size shrinks below the read
    # position, the signature of a restarted writer.
    write_csv(trace[100:150], path)
    deadline = time.monotonic() + 15.0
    while _rows_of(out) < 150 and time.monotonic() < deadline:
        time.sleep(0.02)
    stop.set()
    thread.join(timeout=15)
    assert tailer.truncations >= 1
    assert _rows_of(out) == 150
    got = _concat(out)
    for name, col in ObservationTable(trace[:150]).columns().items():
        np.testing.assert_array_equal(got[name], col)


def test_tailer_survives_rotation(tmp_path, trace):
    """Rotating the file (rename + new file at the path) drains the
    old file to EOF, then follows the new one from its header."""
    path = tmp_path / "rot.csv"
    write_csv(trace[:200], path)
    tailer = TraceTailer(path, batch_size=50, poll_interval=0.01)
    stop, thread, out = _tail_collect(tailer, 200)
    assert _rows_of(out) == 200
    os.rename(path, tmp_path / "rot.csv.1")
    write_csv(trace[200:500], path)
    deadline = time.monotonic() + 15.0
    while _rows_of(out) < 500 and time.monotonic() < deadline:
        time.sleep(0.02)
    stop.set()
    thread.join(timeout=15)
    assert tailer.rotations >= 1
    assert _rows_of(out) == 500
    got = _concat(out)
    for name, col in ObservationTable(trace[:500]).columns().items():
        np.testing.assert_array_equal(got[name], col)


def test_tailer_waits_for_missing_file(tmp_path, trace):
    path = tmp_path / "late.csv"
    tailer = TraceTailer(path, batch_size=50, poll_interval=0.01)
    stop, thread, out = _tail_collect(tailer, 0, timeout=0.2)
    assert _rows_of(out) == 0
    write_csv(trace[:150], path)
    deadline = time.monotonic() + 15.0
    while _rows_of(out) < 150 and time.monotonic() < deadline:
        time.sleep(0.02)
    stop.set()
    thread.join(timeout=15)
    assert _rows_of(out) == 150


def test_tailed_server_differential_with_drain_checkpoint(
        tmp_path, trace, expected):
    """End to end through the server: tail a growing file into a served
    session, drain on stop, and the drain checkpoint resumes to the
    uninterrupted run() result."""
    path = tmp_path / "feed.csv"
    ckpt_dir = tmp_path / "ckpt"
    write_csv(trace[:300], path)
    engine = make_engine()
    server = engine.serve(window=64, checkpoint_dir=ckpt_dir)
    server.attach_tailer(path, session="tail", batch_size=64,
                         poll_interval=0.01)
    server.start()
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        served = server._sessions.get("tail")
        if served is not None and served.records_in >= 300:
            break
        time.sleep(0.02)
    with open(path, "a") as fh:
        tmp = tmp_path / "rest.csv"
        write_csv(trace[300:], tmp)
        fh.write(tmp.read_text().split("\n", 1)[1])
    report = server.stop()
    info = report["sessions"]["tail"]
    assert info["records_in"] == len(trace)
    assert "checkpoint" in info
    # the drain checkpoint captured the fully-ingested session
    resumed = engine.resume(Path(info["checkpoint"]).read_bytes())
    assert resumed.packets_ingested == len(trace)
    assert observables(resumed.close(include_invalid=True)) == \
        expected["lru"]


def test_stream_file_convenience(tmp_path, trace, expected):
    path = tmp_path / "whole.csv"
    write_csv(trace, path)
    with serving(make_engine(), window=64) as (server, address):
        final = stream_file(address, path, "csv", batch_size=128)
    assert observables(final["report"]) == expected["lru"]


# -- auto-checkpointing -------------------------------------------------------


def test_periodic_auto_checkpoint(tmp_path, trace, expected):
    """Every N ingested batches the server rewrites the session's
    checkpoint file atomically; the last one resumes correctly."""
    ckpt_dir = tmp_path / "auto"
    engine = make_engine()
    with serving(engine, window=64, checkpoint_dir=ckpt_dir,
                 checkpoint_every_batches=2) as (server, address):
        final, _ = stream(address, trace, 97, session="ak")
    meta = final["serve"]
    assert meta["checkpoints_written"] == meta["batches_in"] // 2
    snapshot = (ckpt_dir / "ak.ckpt").read_bytes()
    resumed = engine.resume(snapshot)
    assert resumed.packets_ingested > 0
    columns = trace.columns()
    skip = resumed.packets_ingested
    resumed.ingest(ObservationTable.from_arrays(
        {name: col[skip:] for name, col in columns.items()}))
    assert observables(resumed.close(include_invalid=True)) == \
        expected["lru"]
    assert not list(ckpt_dir.glob("*.tmp")), "torn checkpoint left behind"


def test_checkpoint_every_requires_dir():
    with pytest.raises(ValueError, match="checkpoint_dir"):
        IngestServer(make_engine(), checkpoint_every_batches=4)


# -- SIGTERM drain ------------------------------------------------------------


_SERVE_CHILD = """
import sys, threading
from repro.switch.kvstore.cache import CacheGeometry
from repro.telemetry.runtime import QueryEngine

engine = QueryEngine("SELECT COUNT, SUM(pkt_len) GROUPBY srcip",
                     geometry=CacheGeometry.set_associative(64, ways=4))
server = engine.serve(window=64, shards=2, checkpoint_dir=sys.argv[1])

def announce():
    server._ready.wait()
    print(server.address[1], flush=True)

threading.Thread(target=announce, daemon=True).start()
report = server.run_forever()
info = report["sessions"].get("sig", {})
print("DRAINED", info.get("records_in"), flush=True)
"""


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no /dev/shm on this platform")
def test_sigterm_drain_checkpoints_and_resumes(tmp_path, trace, expected):
    """Kill a serving process (2-shard session) mid-stream with
    SIGTERM: it finishes queued windows, checkpoints, exits cleanly
    with no stranded /dev/shm segments, and the checkpoint resumes to
    the uninterrupted result."""
    before = {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(root / "src"), env.get("PYTHONPATH")] if p)
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVE_CHILD, str(tmp_path)],
        stdout=subprocess.PIPE, env=env, text=True)
    try:
        port = int(proc.stdout.readline())
        client = IngestClient(("127.0.0.1", port), "sig", retry_seed=7)
        client.connect()
        batches = list(chunked(trace, 97))
        for batch in batches[:4]:
            client.send(batch)
        client.flush()                    # every sent batch is queued
        proc.send_signal(signal.SIGTERM)
        line = proc.stdout.readline().split()
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert line[0] == "DRAINED" and int(line[1]) == 4 * 97
    # no stranded shared memory from the shard workers
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = {n for n in os.listdir("/dev/shm")
                  if n.startswith("psm_")} - before
        if not leaked:
            break
        time.sleep(0.1)
    assert not leaked, f"stranded /dev/shm segments: {leaked}"
    # the drain checkpoint resumes to the uninterrupted result
    engine = make_engine()
    resumed = engine.resume((tmp_path / "sig.ckpt").read_bytes())
    assert resumed.packets_ingested == 4 * 97
    columns = trace.columns()
    resumed.ingest(ObservationTable.from_arrays(
        {name: col[4 * 97:] for name, col in columns.items()}))
    assert observables(resumed.close(include_invalid=True)) == \
        expected["lru"]


# -- poisoned served session --------------------------------------------------


def test_served_session_poisoning_surfaces_cause(trace):
    """An ingest failure inside a served session poisons it: later
    calls get a fatal ERROR naming the failure, and the original
    exception rides the drain report."""
    from repro.telemetry.faults import FaultPlan as FP

    injector = FaultInjector(FP(abort_ingests={2}))
    with serving(make_engine(), window=64,
                 faults=injector) as (server, address):
        client = IngestClient(address, "poison", max_retries=0)
        client.connect()
        # The fault fires asynchronously on the worker thread, so the
        # poisoning may surface on a later send (enqueue refused) or
        # at the results() call — either way it names the real cause.
        with pytest.raises(ClientError, match="InjectedFault"):
            for batch in list(chunked(trace, 97))[:3]:
                client.send(batch)
            client.results()
        client.disconnect()
        report = server.stop()
    info = report["sessions"]["poison"]
    assert "InjectedFault" in info["error"]
