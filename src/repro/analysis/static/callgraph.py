"""Intra-module call graph for async-reachability analysis.

The blocking checker (``RPR-C101``) must see *through* one level of
helper functions: ``async def read_frame`` calling a sync
``decode_payload`` that calls ``pickle.loads`` blocks the event loop
exactly as much as the direct call would.  This module builds the
conservative call graph that powers that walk.

Resolution is deliberately narrow, trading recall for a zero
false-positive rate on method names that collide across classes:

* ``f(...)`` where ``f`` is a module-level ``def`` in the same file
  resolves to that function;
* ``self.m(...)`` / ``cls.m(...)`` resolves to method ``m`` of the
  *enclosing class only*;
* everything else (``obj.m(...)`` on an arbitrary receiver, calls into
  other modules, closures) is opaque — those callees are analyzed in
  their own right when they live in a scanned file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["FunctionInfo", "build_edges", "collect_functions",
           "own_nodes"]


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in a module."""

    node: ast.AST               # FunctionDef | AsyncFunctionDef
    name: str
    qualname: str
    class_name: str | None
    is_async: bool


def own_nodes(func: ast.AST) -> list[ast.AST]:
    """All AST nodes of ``func``'s own frame — the nodes of nested
    function/class definitions are excluded (their bodies execute in a
    different frame, if ever)."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def collect_functions(tree: ast.Module) -> list[FunctionInfo]:
    """Every def in the module, at any nesting depth, with its
    enclosing-class context."""
    found: list[FunctionInfo] = []

    def visit(node: ast.AST, class_name: str | None,
              prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                found.append(FunctionInfo(
                    node=child, name=child.name, qualname=qual,
                    class_name=class_name,
                    is_async=isinstance(child, ast.AsyncFunctionDef)))
                visit(child, None, f"{qual}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name, f"{prefix}{child.name}.")
            else:
                visit(child, class_name, prefix)

    visit(tree, None, "")
    return found


def build_edges(tree: ast.Module, functions: list[FunctionInfo],
                ) -> dict[str, list[tuple[str, int]]]:
    """``qualname -> [(callee qualname, call lineno), ...]`` using the
    narrow resolution rules above."""
    module_level = {f.name: f for f in functions
                    if f.class_name is None and "." not in f.qualname}
    by_class: dict[tuple[str, str], FunctionInfo] = {
        (f.class_name, f.name): f for f in functions
        if f.class_name is not None}
    edges: dict[str, list[tuple[str, int]]] = {}
    for info in functions:
        out: list[tuple[str, int]] = []
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in module_level:
                out.append((module_level[func.id].qualname, node.lineno))
            elif (isinstance(func, ast.Attribute)
                  and isinstance(func.value, ast.Name)
                  and func.value.id in ("self", "cls")
                  and info.class_name is not None
                  and (info.class_name, func.attr) in by_class):
                out.append((by_class[(info.class_name,
                                      func.attr)].qualname, node.lineno))
        edges[info.qualname] = out
    return edges
